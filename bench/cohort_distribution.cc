// Population-level companion to Figure 2: per-window stability quantiles of
// the loyal and defecting cohorts. Shows *when* and *how cleanly* the two
// distributions separate — the statistical backdrop behind the single
// customer trajectory the paper plots.

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/distribution.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 1000;
  scenario.population.num_defecting = 1000;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                            core::StabilityModel::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                            model.ScoreDataset(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(const eval::CohortDistribution distribution,
                            eval::ComputeCohortDistribution(dataset, scores,
                                                            2));

  std::printf("=== Stability distribution by cohort and month ===\n\n");
  eval::TextTable table({"month", "loyal p25", "loyal median", "loyal p75",
                         "defect p25", "defect median", "defect p75"});
  for (size_t k = 0; k < distribution.loyal.size(); ++k) {
    const eval::CohortQuantiles& loyal = distribution.loyal[k];
    const eval::CohortQuantiles& defecting = distribution.defecting[k];
    if (loyal.report_month < 10 || loyal.report_month > 26) continue;
    table.AddRow({std::to_string(loyal.report_month),
                  FormatDouble(loyal.p25, 3), FormatDouble(loyal.median, 3),
                  FormatDouble(loyal.p75, 3), FormatDouble(defecting.p25, 3),
                  FormatDouble(defecting.median, 3),
                  FormatDouble(defecting.p75, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: through month 18 the quartile ranges coincide; from\n"
      "month 20 the defecting cohort's quartiles fall away while the loyal\n"
      "cohort's stay near 1 — the population view behind Figures 1 and 2.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "cohort_distribution failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
