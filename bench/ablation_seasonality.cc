// Ablation: robustness to shopping-rhythm noise.
//
// Customers do not visit at constant rates; personal seasonality (holiday
// cycles, pay cycles, vacations) modulates visit frequency. Rhythm noise
// looks like churn to frequency-based signals (RFM's R and F families) but
// leaves basket *content* untouched, which is what the stability model
// reads. This ablation sweeps the rhythm amplitude and reports both
// models' detection AUROC.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "rfm/rfm_model.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  std::printf("=== Ablation: shopping-rhythm (seasonality) noise ===\n\n");
  eval::TextTable table({"rhythm amplitude", "stability AUROC@20",
                         "stability AUROC@22", "RFM AUROC@20",
                         "RFM AUROC@22"});

  for (const double amplitude : {0.0, 0.3, 0.6, 0.9}) {
    datagen::PaperScenarioConfig scenario;
    scenario.population.num_loyal = 800;
    scenario.population.num_defecting = 800;
    scenario.population.seasonal_amplitude_max = amplitude;
    scenario.seed = 42;
    CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                              datagen::MakePaperDataset(scenario));

    core::StabilityModelOptions stability_options;
    stability_options.significance.alpha = 2.0;
    stability_options.window_span_months = 2;
    CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel stability_model,
                              core::StabilityModel::Make(stability_options));
    CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix stability_scores,
                              stability_model.ScoreDataset(dataset));
    CHURNLAB_ASSIGN_OR_RETURN(
        const auto stability_series,
        eval::AurocPerWindow(dataset, stability_scores,
                             eval::ScoreOrientation::kLowerIsPositive, 2));

    CHURNLAB_ASSIGN_OR_RETURN(const rfm::RfmModel rfm_model,
                              rfm::RfmModel::Make(rfm::RfmModelOptions{}));
    CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix rfm_scores,
                              rfm_model.ScoreDataset(dataset));
    CHURNLAB_ASSIGN_OR_RETURN(
        const auto rfm_series,
        eval::AurocPerWindow(dataset, rfm_scores,
                             eval::ScoreOrientation::kHigherIsPositive, 2));

    const auto at = [](const std::vector<eval::WindowAuroc>& series,
                       int32_t month) {
      for (const eval::WindowAuroc& point : series) {
        if (point.report_month == month) return point.auroc;
      }
      return 0.5;
    };
    table.AddRow({FormatDouble(amplitude, 1),
                  FormatDouble(at(stability_series, 20), 3),
                  FormatDouble(at(stability_series, 22), 3),
                  FormatDouble(at(rfm_series, 20), 3),
                  FormatDouble(at(rfm_series, 22), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: rhythm noise degrades the frequency-driven RFM\n"
      "signal faster than the content-driven stability signal — basket\n"
      "composition survives an irregular calendar; visit counts do not.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "ablation_seasonality failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
