// Custom google-benchmark main for the micro benches: runs the registered
// benchmarks through the normal console reporter and additionally exports a
// versioned BENCH_*.json document (per-run timings plus the churnlab
// telemetry snapshot) when --metrics-out=<path> is passed. See
// docs/OBSERVABILITY.md for the schema.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace {

// ConsoleReporter that also captures every run so we can serialize the
// results after the suite finishes.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      runs_.push_back(run);
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

std::string BenchmarksToJson(const std::string& suite,
                             const std::vector<RecordingReporter::Run>& runs) {
  churnlab::obs::JsonWriter json;
  json.BeginObject()
      .Key("churnlab_bench_version")
      .Uint(1)
      .Key("suite")
      .String(suite)
      .Key("benchmarks")
      .BeginArray();
  for (const auto& run : runs) {
    const double iterations =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    json.BeginObject()
        .Key("name")
        .String(run.benchmark_name())
        .Key("iterations")
        .Uint(static_cast<uint64_t>(run.iterations))
        .Key("real_ns_per_iter")
        .Double(run.real_accumulated_time / iterations * 1e9)
        .Key("cpu_ns_per_iter")
        .Double(run.cpu_accumulated_time / iterations * 1e9);
    if (!run.counters.empty()) {
      json.Key("counters").BeginObject();
      for (const auto& [name, counter] : run.counters) {
        json.Key(name).Double(counter.value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray().EndObject();
  return json.str();
}

// Splices the telemetry snapshot into the bench document:
//   {"churnlab_bench_version":1,...,"telemetry":{...}}
std::string ComposeDocument(const std::string& bench_json) {
  std::string document = bench_json;
  document.pop_back();  // trailing '}'
  document += ",\"telemetry\":";
  document += churnlab::obs::JsonExporter::ExportGlobal();
  document += "}";
  return document;
}

std::string SuiteName(const char* argv0) {
  std::string name = argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string prom_out;
  std::vector<char*> arguments;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strncmp(argv[i], "--prom-out=", 11) == 0) {
      prom_out = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--prom-out") == 0 && i + 1 < argc) {
      prom_out = argv[++i];
    } else if (std::strcmp(argv[i], "--detailed-timing") == 0) {
      // Opt-in worst case: per-operation latency histograms on, as the CLI
      // enables for --metrics-out runs. Used to measure the instrumentation
      // overhead against the default (gated-off) configuration.
      churnlab::obs::SetDetailedTiming(true);
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0) {
      // Arms the recorder for the whole suite; benches that manage their
      // own A/B arming (BM_ServeReplay) override it per benchmark.
      churnlab::obs::FlightRecorder::Arm();
    } else {
      arguments.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(arguments.size());
  arguments.push_back(nullptr);

  benchmark::Initialize(&filtered_argc, arguments.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             arguments.data())) {
    return 1;
  }

  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!metrics_out.empty()) {
    const std::string document = ComposeDocument(
        BenchmarksToJson(SuiteName(argv[0]), reporter.runs()));
    std::FILE* file = std::fopen(metrics_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(document.data(), 1, document.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::fprintf(stderr, "wrote bench telemetry to %s\n", metrics_out.c_str());
  }
  if (!prom_out.empty()) {
    const churnlab::Status written =
        churnlab::obs::WritePrometheusFile(prom_out);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", prom_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote prometheus metrics to %s\n",
                 prom_out.c_str());
  }
  return 0;
}
