// Three-way comparison: the paper's stability model, the paper's evaluated
// baseline (RFM logistic regression), and a category-sequence-similarity
// baseline in the spirit of Miguéis et al. 2012 (cited as related work:
// sequence models "improved attrition detection" over RFM). Extends the
// paper's Figure 1 with the missing related-work column.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "rfm/rfm_model.h"
#include "rfm/sequence_model.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 1000;
  scenario.population.num_defecting = 1000;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  core::StabilityModelOptions stability_options;
  stability_options.significance.alpha = 2.0;
  stability_options.window_span_months = 2;
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel stability_model,
                            core::StabilityModel::Make(stability_options));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix stability_scores,
                            stability_model.ScoreDataset(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const auto stability_series,
      eval::AurocPerWindow(dataset, stability_scores,
                           eval::ScoreOrientation::kLowerIsPositive, 2));

  CHURNLAB_ASSIGN_OR_RETURN(const rfm::RfmModel rfm_model,
                            rfm::RfmModel::Make(rfm::RfmModelOptions{}));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix rfm_scores,
                            rfm_model.ScoreDataset(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const auto rfm_series,
      eval::AurocPerWindow(dataset, rfm_scores,
                           eval::ScoreOrientation::kHigherIsPositive, 2));

  CHURNLAB_ASSIGN_OR_RETURN(
      const rfm::SequenceModel sequence_model,
      rfm::SequenceModel::Make(rfm::SequenceModelOptions{}));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix sequence_scores,
                            sequence_model.ScoreDataset(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const auto sequence_series,
      eval::AurocPerWindow(dataset, sequence_scores,
                           eval::ScoreOrientation::kHigherIsPositive, 2));

  std::printf("=== Baseline comparison: detection AUROC by month ===\n\n");
  eval::TextTable table(
      {"month", "stability (paper)", "RFM (paper baseline)",
       "sequence similarity"});
  for (size_t i = 0; i < stability_series.size(); ++i) {
    const int32_t month = stability_series[i].report_month;
    if (month < 12 || month > 24) continue;
    table.AddRow({std::to_string(month),
                  FormatDouble(stability_series[i].auroc, 3),
                  FormatDouble(rfm_series[i].auroc, 3),
                  FormatDouble(sequence_series[i].auroc, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: the *trained* sequence baseline detects at least as\n"
      "well as the untrained stability score (it also sees which categories\n"
      "recent baskets cover) — consistent with the related work's claim of\n"
      "improving on RFM. What it cannot do is the paper's selling point:\n"
      "its similarity scalar names no products, while every stability drop\n"
      "decomposes into the exact items lost (see explanation_quality).\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "baseline_comparison failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
