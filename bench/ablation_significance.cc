// Ablation: the paper's alpha^(c-l) significance against an
// exponentially-weighted-moving-average (EWMA) presence score — the
// "deepen the study of the characterization of significant products"
// direction the paper's conclusion announces.
//
// alpha^(c-l) lets long-standing habits build unbounded weight; EWMA caps
// every product's weight at 1 and forgets at a fixed rate. The trade-off
// shows up as detection speed right after the onset versus stability of
// the pre-onset baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

struct Variant {
  std::string label;
  churnlab::core::SignificanceOptions significance;
};

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 800;
  scenario.population.num_defecting = 800;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  std::vector<Variant> variants;
  {
    Variant paper;
    paper.label = "alpha^(c-l), alpha=2 (paper)";
    paper.significance.alpha = 2.0;
    variants.push_back(paper);
  }
  for (const double lambda : {0.5, 0.7, 0.9}) {
    Variant ewma;
    ewma.label = "EWMA lambda=" + FormatDouble(lambda, 1);
    ewma.significance.kind = core::SignificanceKind::kEwma;
    ewma.significance.ewma_lambda = lambda;
    variants.push_back(ewma);
  }

  const std::vector<int32_t> report_months = {14, 16, 18, 20, 22, 24};
  std::vector<std::string> headers = {"significance"};
  for (const int32_t month : report_months) {
    headers.push_back("AUROC@" + std::to_string(month));
  }
  std::printf("=== Ablation: significance weighting ===\n\n");
  eval::TextTable table(headers);
  for (const Variant& variant : variants) {
    core::StabilityModelOptions options;
    options.significance = variant.significance;
    options.window_span_months = 2;
    CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                              core::StabilityModel::Make(options));
    CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                              model.ScoreDataset(dataset));
    CHURNLAB_ASSIGN_OR_RETURN(
        const std::vector<eval::WindowAuroc> series,
        eval::AurocPerWindow(dataset, scores,
                             eval::ScoreOrientation::kLowerIsPositive, 2));
    std::vector<std::string> row = {variant.label};
    for (const int32_t month : report_months) {
      std::string cell = "-";
      for (const eval::WindowAuroc& point : series) {
        if (point.report_month == month) cell = FormatDouble(point.auroc, 3);
      }
      row.push_back(cell);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "ablation_significance failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
