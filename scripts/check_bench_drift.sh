#!/usr/bin/env bash
# Compares freshly generated BENCH_<suite>.json documents against the
# baselines committed at a git ref (default HEAD) and fails when any
# benchmark's real_ns_per_iter regressed by more than the threshold.
#
# Usage: scripts/check_bench_drift.sh [out_dir] [threshold_pct] [baseline_ref]
#
#   out_dir        directory holding the fresh BENCH_*.json (default .)
#   threshold_pct  allowed slowdown in percent (default 10)
#   baseline_ref   git ref providing the committed baselines (default HEAD)
#
# Suites or series without a committed baseline pass with a note — the
# trajectory starts at the first commit that carries them. The merged
# BENCH_micro.json is skipped (it is an array of the per-suite documents).
set -euo pipefail

OUT_DIR=${1:-.}
THRESHOLD=${2:-10}
BASELINE_REF=${3:-HEAD}

command -v jq >/dev/null || { echo "check_bench_drift: jq not found" >&2; exit 1; }

repo_root=$(git rev-parse --show-toplevel)

shopt -s nullglob
suites=("${OUT_DIR}"/BENCH_micro_*.json)
if [[ ${#suites[@]} -eq 0 ]]; then
  echo "check_bench_drift: no BENCH_micro_*.json under ${OUT_DIR}" >&2
  exit 1
fi

failures=0
compared=0
for current in "${suites[@]}"; do
  suite=$(basename "${current}")
  baseline_json=$(git -C "${repo_root}" show "${BASELINE_REF}:${suite}" 2>/dev/null || true)
  if [[ -z "${baseline_json}" ]]; then
    echo "~ ${suite}: no baseline at ${BASELINE_REF}; trajectory starts here"
    continue
  fi

  # One line per benchmark present in both documents:
  #   <name> <baseline> <current>
  # Memory benchmarks (BM_FleetMemory) run a single iteration and carry
  # their payload in the bytes_total counter, so drift is computed on bytes
  # held rather than single-shot wall time.
  joined=$(jq -rn --argjson base "${baseline_json}" --slurpfile cur "${current}" '
    def metric: if (.name | startswith("BM_FleetMemory"))
                then .counters.bytes_total else .real_ns_per_iter end;
    ($base.benchmarks | map({key: .name, value: metric}) | from_entries) as $b
    | $cur[0].benchmarks[]
    | select($b[.name] != null)
    | "\(.name) \($b[.name]) \(metric)"')

  while read -r name base_ns cur_ns; do
    [[ -n "${name}" ]] || continue
    compared=$((compared + 1))
    verdict=$(jq -rn --argjson b "${base_ns}" --argjson c "${cur_ns}" \
                    --argjson t "${THRESHOLD}" '
      (if $b > 0 then (($c - $b) / $b * 100) else 0 end) as $pct
      | "\(if $pct > $t then "FAIL" else "ok" end) \($pct * 100 | round / 100)"')
    status=${verdict%% *}
    pct=${verdict#* }
    if [[ "${status}" == "FAIL" ]]; then
      echo "! ${suite} ${name}: ${base_ns} -> ${cur_ns} ns/iter (+${pct}% > ${THRESHOLD}%)"
      failures=$((failures + 1))
    else
      echo "  ${suite} ${name}: ${pct}% drift"
    fi
  done <<< "${joined}"

  new_series=$(jq -rn --argjson base "${baseline_json}" --slurpfile cur "${current}" '
    ($base.benchmarks | map(.name)) as $names
    | $cur[0].benchmarks[] | select(.name as $n | $names | index($n) | not) | .name')
  if [[ -n "${new_series}" ]]; then
    while read -r name; do
      echo "~ ${suite} ${name}: new series; trajectory starts here"
    done <<< "${new_series}"
  fi
done

if [[ ${failures} -gt 0 ]]; then
  echo "check_bench_drift: ${failures} benchmark(s) regressed beyond ${THRESHOLD}% (of ${compared} compared)" >&2
  exit 1
fi
echo "check_bench_drift: ${compared} benchmark(s) within ${THRESHOLD}% of ${BASELINE_REF}"
