#!/usr/bin/env bash
# kill -9 chaos harness for the durable ingest journal (docs/ROBUSTNESS.md
# §Durability). Each round floods a journaled serve-http and kills it with
# no warning — either a timed `kill -9` mid-flood or an `abort` failpoint
# at an exact durability boundary (journal append / fsync / checkpoint,
# snapshot write) — then asserts the two recovery invariants:
#
#   1. No acknowledged receipt is ever lost: the recovered journal's
#      next-sequence covers the flood client's last acknowledged sequence.
#   2. Recovery is exact: the recovered fleet state is byte-identical to a
#      fault-free offline replay (serve-replay) of the same receipt prefix,
#      and a `serve-http --recover` restart of the same journal serves it.
#
# The matrix runs under both --journal-fsync=always and batch. With the
# default 6 timed rounds per policy plus the 8-point failpoint matrix per
# policy, one run exercises 28 distinct kill points.
#
# Finally the journal suites (journal_test, journal_fuzz_test) run under
# ThreadSanitizer and AddressSanitizer+UBSan; skip that section with
# CHURNLAB_CRASH_NO_SANITIZERS=1.
#
# Usage: scripts/check_crash.sh [build_dir] [timed_rounds_per_policy]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
TIMED_ROUNDS=${2:-6}
CLI="${BUILD_DIR}/tools/churnlab"
if [[ ! -x "${CLI}" ]]; then
  echo "check_crash: ${CLI} not found; run:" >&2
  echo "  cmake -B ${BUILD_DIR} && cmake --build ${BUILD_DIR} --target churnlab_cli" >&2
  exit 1
fi

WORK_DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill -9 "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

DATASET="${WORK_DIR}/crash.clb"
# Large enough that a flood takes a visible fraction of a second, so timed
# kills land mid-stream rather than after the fact.
"${CLI}" simulate --out "${DATASET}" --loyal 150 --defecting 150 --seed 11 \
    > /dev/null

JOURNAL="${WORK_DIR}/journal"
SNAPSHOT="${WORK_DIR}/state.snap"
ACKS="${WORK_DIR}/acks.txt"
KILLS=0

# Starts a journaled serve-http; sets SERVER_PID and PORT.
#   start_server <fsync> <log> [extra flags...]
start_server() {
  local fsync="$1" log="$2"
  shift 2
  "${CLI}" serve-http --data "${DATASET}" --port 0 \
      --journal "${JOURNAL}" --journal-fsync "${fsync}" \
      --snapshot-out "${SNAPSHOT}" --snapshot-append \
      --snapshot-interval-ms 100 "$@" > "${log}" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's#.*serving on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
           "${log}" | head -1)
    [[ -n "${PORT}" ]] && break
    kill -0 "${SERVER_PID}" 2>/dev/null || {
      echo "check_crash: server died during startup:" >&2
      cat "${log}" >&2
      exit 1
    }
    sleep 0.1
  done
  [[ -n "${PORT}" ]] || { echo "check_crash: no port in ${log}" >&2; exit 1; }
}

# Parses "... next-sequence=N" from a recovery summary line.
next_sequence_of() {
  sed -n 's/.*next-sequence=\([0-9]*\).*/\1/p' "$1" | head -1
}

# One crash round: flood, die, recover, verify.
#   round <tag> <fsync> <kill_mode> <kill_arg>
#     kill_mode=timed: kill -9 the server kill_arg seconds into the flood
#     kill_mode=failpoint: arm kill_arg (an abort spec); the server kills
#       itself at that exact site and the flood client runs into the corpse
round() {
  local tag="$1" fsync="$2" kill_mode="$3" kill_arg="$4"
  rm -rf "${JOURNAL}" "${SNAPSHOT}" "${ACKS}"
  local log="${WORK_DIR}/${tag}.server.log"
  if [[ "${kill_mode}" == failpoint ]]; then
    start_server "${fsync}" "${log}" --failpoints "${kill_arg}"
  else
    start_server "${fsync}" "${log}"
  fi

  # Flood the whole dataset sequentially on one connection; every ack line
  # lands in ${ACKS} strictly after the server's 200 was read, so the file
  # never claims an ack the client did not observe.
  "${CLI}" flood --data "${DATASET}" --port "${PORT}" \
      --request-receipts 40 --acks-out "${ACKS}" \
      > "${WORK_DIR}/${tag}.flood.log" 2>&1 &
  local flood_pid=$!

  if [[ "${kill_mode}" == timed ]]; then
    sleep "${kill_arg}"
    kill -9 "${SERVER_PID}" 2>/dev/null || true
  fi
  # Either way the server is (about to be) dead: the failpoint rounds
  # _exit(42) inside the armed site. Reap both processes.
  wait "${SERVER_PID}" 2>/dev/null || true
  SERVER_PID=""
  wait "${flood_pid}" 2>/dev/null || true
  KILLS=$((KILLS + 1))

  local acked=0
  if [[ -s "${ACKS}" ]]; then
    acked=$(tail -1 "${ACKS}" | sed -n 's/.*end=\([0-9]*\).*/\1/p')
  fi

  # Read-only recovery through the offline tooling: scan the journal as the
  # crashed process left it and write the recovered state.
  local recover_log="${WORK_DIR}/${tag}.recover.log"
  "${CLI}" serve-replay --data "${DATASET}" --recover "${JOURNAL}" \
      --resume "${SNAPSHOT}" --limit-receipts 0 --batch-days 7 \
      --snapshot-out "${WORK_DIR}/${tag}.recovered.snap" \
      > "${recover_log}" 2>&1 || {
    echo "check_crash: ${tag}: recovery failed:" >&2
    cat "${recover_log}" >&2
    exit 1
  }
  local next
  next=$(next_sequence_of "${recover_log}")
  [[ -n "${next}" ]] || {
    echo "check_crash: ${tag}: no recovery summary in ${recover_log}" >&2
    exit 1
  }

  # Invariant 1: every acknowledged receipt survived the crash.
  if [[ "${next}" -lt "${acked}" ]]; then
    echo "check_crash: ${tag}: LOST ACKNOWLEDGED RECEIPTS:" \
         "acked-sequence-end=${acked} but recovered next-sequence=${next}" >&2
    exit 1
  fi

  # Invariant 2: recovered state == fault-free oracle of the same prefix.
  # The flood sends the day-sorted replay stream sequentially, so sequence
  # k is exactly replay receipt k and `--limit-receipts next` is the
  # acknowledged-plus-journaled prefix.
  "${CLI}" serve-replay --data "${DATASET}" --limit-receipts "${next}" \
      --batch-days 7 --snapshot-out "${WORK_DIR}/${tag}.oracle.snap" \
      > /dev/null 2>&1
  cmp "${WORK_DIR}/${tag}.recovered.snap" "${WORK_DIR}/${tag}.oracle.snap" || {
    echo "check_crash: ${tag}: recovered state differs from the fault-free" \
         "oracle at ${next} receipts" >&2
    exit 1
  }

  # The real restart path: serve-http --recover on the same journal must
  # come up, report the same next-sequence, and serve.
  local restart_log="${WORK_DIR}/${tag}.restart.log"
  start_server "${fsync}" "${restart_log}" --recover
  local restart_next
  restart_next=$(next_sequence_of "${restart_log}")
  [[ "${restart_next}" == "${next}" ]] || {
    echo "check_crash: ${tag}: serve-http --recover next-sequence" \
         "${restart_next} != offline scan ${next}" >&2
    exit 1
  }
  local health
  health=$(curl -s -o /dev/null -w '%{http_code}' \
           "http://127.0.0.1:${PORT}/v1/health")
  [[ "${health}" == "200" ]] || {
    echo "check_crash: ${tag}: recovered server health got HTTP ${health}" >&2
    exit 1
  }
  kill -TERM "${SERVER_PID}" 2>/dev/null || true
  wait "${SERVER_PID}" 2>/dev/null || {
    echo "check_crash: ${tag}: recovered server drain exited nonzero" >&2
    exit 1
  }
  SERVER_PID=""

  local tail_note=""
  grep -q 'discarded-tail-frames=[1-9]' "${recover_log}" \
      && tail_note=" (torn tail discarded)"
  echo "   ${tag}: acked=${acked} recovered-next=${next} OK${tail_note}"
}

for fsync in always batch; do
  echo "== ${fsync}-fsync: ${TIMED_ROUNDS} timed kill -9 rounds =="
  for i in $(seq 1 "${TIMED_ROUNDS}"); do
    # Spread kills across the flood: 0.05s .. 0.05 + 0.12*(rounds-1) s in.
    delay=$(awk -v i="${i}" 'BEGIN { printf "%.2f", 0.05 + (i - 1) * 0.12 }')
    round "${fsync}-timed-${i}" "${fsync}" timed "${delay}"
  done

  echo "== ${fsync}-fsync: abort failpoints at durability boundaries =="
  round "${fsync}-append-1" "${fsync}" failpoint \
        'serve.journal.append=abort@nth(1)'
  round "${fsync}-append-60" "${fsync}" failpoint \
        'serve.journal.append=abort@nth(60)'
  round "${fsync}-append-150" "${fsync}" failpoint \
        'serve.journal.append=abort@nth(150)'
  round "${fsync}-fsync-2" "${fsync}" failpoint \
        'serve.journal.fsync=abort@nth(2)'
  round "${fsync}-fsync-80" "${fsync}" failpoint \
        'serve.journal.fsync=abort@nth(80)'
  round "${fsync}-ckpt-1" "${fsync}" failpoint \
        'serve.journal.checkpoint=abort@nth(1)'
  round "${fsync}-ckpt-3" "${fsync}" failpoint \
        'serve.journal.checkpoint=abort@nth(3)'
  round "${fsync}-snapwrite-2" "${fsync}" failpoint \
        'serve.snapshot.write_frame=abort@nth(2)'
done
echo "== ${KILLS} kill points survived with zero acknowledged loss =="

if [[ "${CHURNLAB_CRASH_NO_SANITIZERS:-0}" != "1" ]]; then
  echo "== journal suites under sanitizers =="
  JOBS=$(nproc 2>/dev/null || echo 2)
  for sanitizer in thread address; do
    build_dir="build-${sanitizer}san"
    echo "-- ${sanitizer} sanitizer (${build_dir}) --"
    cmake -B "${build_dir}" -S . \
      -DCHURNLAB_SANITIZE="${sanitizer}" \
      -DCHURNLAB_BUILD_BENCHMARKS=OFF \
      -DCHURNLAB_BUILD_EXAMPLES=OFF \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${build_dir}" -j "${JOBS}" \
      --target journal_test journal_fuzz_test
    (cd "${build_dir}" && ctest --output-on-failure -R 'Journal')
  done
fi

echo "check_crash: OK"
