#!/usr/bin/env bash
# End-to-end check of the HTTP scoring front end (serve-http):
#
#   1. starts serve-http over a freshly simulated dataset
#   2. exercises every endpoint and asserts the error taxonomy on the wire
#      (200/400/404/405/409/413 plus the Prometheus exposition)
#   3. floods the server with concurrent ingest clients and asserts both
#      overload shedding (429 + Retry-After at a configured admission
#      bound) and lossless coalesced ingestion at generous bounds
#   4. drains via SIGTERM and asserts the final snapshot flush
#   5. builds and runs the net test suites under ThreadSanitizer and
#      AddressSanitizer+UBSan (skip with CHURNLAB_HTTP_NO_SANITIZERS=1)
#
# Usage: scripts/check_http.sh [build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
CLI="${BUILD_DIR}/tools/churnlab"
if [[ ! -x "${CLI}" ]]; then
  echo "check_http: ${CLI} not found; run:" >&2
  echo "  cmake -B ${BUILD_DIR} && cmake --build ${BUILD_DIR} --target churnlab_cli" >&2
  exit 1
fi
command -v curl >/dev/null || { echo "check_http: curl not found" >&2; exit 1; }

WORK_DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

DATASET="${WORK_DIR}/http.clb"
"${CLI}" simulate --out "${DATASET}" --loyal 40 --defecting 40 --seed 9 \
    > /dev/null

# Starts serve-http with the given extra flags on an ephemeral port; sets
# SERVER_PID and PORT.
start_server() {
  local log="$1"; shift
  "${CLI}" serve-http --data "${DATASET}" --port 0 "$@" > "${log}" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's#.*serving on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
           "${log}" | head -1)
    [[ -n "${PORT}" ]] && break
    kill -0 "${SERVER_PID}" 2>/dev/null || {
      echo "check_http: server died during startup:" >&2
      cat "${log}" >&2
      exit 1
    }
    sleep 0.1
  done
  [[ -n "${PORT}" ]] || { echo "check_http: no port in ${log}" >&2; exit 1; }
}

stop_server() {
  [[ -n "${SERVER_PID}" ]] || return 0
  kill "${SERVER_PID}" 2>/dev/null || true
  wait "${SERVER_PID}" 2>/dev/null || true
  SERVER_PID=""
}

# http <method> <path> [body]: prints "<status>"; response body lands in
# ${WORK_DIR}/reply.
http() {
  local method="$1" path="$2" body="${3:-}"
  if [[ -n "${body}" ]]; then
    curl -s -o "${WORK_DIR}/reply" -w '%{http_code}' -X "${method}" \
         -d "${body}" "http://127.0.0.1:${PORT}${path}"
  else
    curl -s -o "${WORK_DIR}/reply" -w '%{http_code}' -X "${method}" \
         "http://127.0.0.1:${PORT}${path}"
  fi
}

expect_status() {
  local want="$1" got="$2" what="$3"
  if [[ "${got}" != "${want}" ]]; then
    echo "check_http: ${what}: want HTTP ${want}, got ${got}" >&2
    cat "${WORK_DIR}/reply" >&2 || true
    exit 1
  fi
}

expect_reply_contains() {
  local needle="$1" what="$2"
  grep -q -- "${needle}" "${WORK_DIR}/reply" || {
    echo "check_http: ${what}: reply lacks '${needle}'" >&2
    cat "${WORK_DIR}/reply" >&2
    exit 1
  }
}

echo "== endpoint matrix =="
SNAPSHOT="${WORK_DIR}/fleet.snap"
start_server "${WORK_DIR}/server.log" --snapshot-out "${SNAPSHOT}"

expect_status 200 "$(http GET /v1/health)" "GET /v1/health"
expect_reply_contains '"receipts_total"' "health body"

BATCH='{"receipts":[{"customer":1,"day":3,"spend":4.5,"items":[7,9]},{"customer":2,"day":3}]}'
expect_status 200 "$(http POST /v1/ingest "${BATCH}")" "POST /v1/ingest"
expect_reply_contains '"receipts_ingested":2' "ingest report"
expect_reply_contains '"sequence":' "ingest sequence"

expect_status 200 "$(http GET /v1/customers/1)" "GET /v1/customers/1"
expect_reply_contains '"stability"' "customer body"
expect_status 404 "$(http GET /v1/customers/999999)" "unknown customer"
expect_status 400 "$(http GET /v1/customers/abc)" "malformed customer id"
expect_status 404 "$(http GET /nope)" "unknown path"
expect_status 405 "$(http DELETE /v1/health)" "wrong method"
expect_status 400 "$(http POST /v1/ingest '{"receipts":[{"x":1}]}')" \
    "malformed ingest"
expect_reply_contains 'receipt 0' "parse reason in 400 body"

expect_status 200 "$(http GET /metrics)" "GET /metrics"
expect_reply_contains 'churnlab_net_requests_total' "net counters exported"
expect_reply_contains '# TYPE churnlab_net_requests_total counter' \
    "exposition TYPE header"

expect_status 200 "$(http POST /v1/snapshot)" "POST /v1/snapshot"
[[ -s "${SNAPSHOT}" ]] || { echo "check_http: snapshot not written" >&2; exit 1; }

echo "== graceful drain (SIGTERM) =="
rm -f "${SNAPSHOT}"
kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}" || { echo "check_http: drain exit != 0" >&2; exit 1; }
SERVER_PID=""
grep -q "drained:" "${WORK_DIR}/server.log" || {
  echo "check_http: drain summary missing:" >&2
  cat "${WORK_DIR}/server.log" >&2
  exit 1
}
[[ -s "${SNAPSHOT}" ]] || {
  echo "check_http: drain did not flush a snapshot" >&2
  exit 1
}

echo "== overload shedding at a configured bound =="
# max-pending-mb 0 admits no ingest bytes at all: every ingest must shed
# with 429 + Retry-After while read-only endpoints keep serving.
start_server "${WORK_DIR}/shed.log" --max-pending-mb 0 --retry-after 7
SHED_CLIENTS=8
SHED_REQUESTS=5
shed_pids=()
for c in $(seq 1 "${SHED_CLIENTS}"); do
  (
    for _ in $(seq 1 "${SHED_REQUESTS}"); do
      curl -s -o /dev/null -w '%{http_code}:%{header_json}\n' \
           -X POST -d "${BATCH}" "http://127.0.0.1:${PORT}/v1/ingest"
    done
  ) > "${WORK_DIR}/shed_codes.${c}" &
  shed_pids+=($!)
done
for pid in "${shed_pids[@]}"; do wait "${pid}"; done
cat "${WORK_DIR}"/shed_codes.* > "${WORK_DIR}/shed_codes"
sheds=$(grep -c '^429:' "${WORK_DIR}/shed_codes" || true)
total=$((SHED_CLIENTS * SHED_REQUESTS))
if [[ "${sheds}" -ne "${total}" ]]; then
  echo "check_http: want ${total} sheds at zero admission, got ${sheds}" >&2
  exit 1
fi
grep -q '"retry-after"' "${WORK_DIR}/shed_codes" || {
  echo "check_http: 429 responses lack Retry-After" >&2
  exit 1
}
expect_status 200 "$(http GET /v1/health)" "health while shedding"
expect_reply_contains '"receipts_total":0' "sheds never reached the fleet"
stop_server
echo "   ${sheds}/${total} floods shed with 429"

echo "== concurrent ingest flood (coalesced, lossless) =="
start_server "${WORK_DIR}/flood.log" --coalesce-batch 1024
FLOOD_CLIENTS=8
FLOOD_REQUESTS=25
FLOOD_RECEIPTS=250   # 8 * 25 * 250 = 50,000 receipts
flood_pids=()
for c in $(seq 1 "${FLOOD_CLIENTS}"); do
  (
    for r in $(seq 1 "${FLOOD_REQUESTS}"); do
      body='{"receipts":['
      for i in $(seq 1 "${FLOOD_RECEIPTS}"); do
        [[ "${i}" -gt 1 ]] && body+=','
        body+="{\"customer\":$((c * 100000 + i % 50)),\"day\":$((r * 3))}"
      done
      body+=']}'
      code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "${body}" \
             "http://127.0.0.1:${PORT}/v1/ingest")
      [[ "${code}" == "200" ]] || {
        echo "check_http: flood request got HTTP ${code}" >&2
        exit 1
      }
    done
  ) &
  flood_pids+=($!)
done
for pid in "${flood_pids[@]}"; do
  wait "${pid}" || { echo "check_http: flood client failed" >&2; exit 1; }
done
expect_status 200 "$(http GET /v1/health)" "health after flood"
want_receipts=$((FLOOD_CLIENTS * FLOOD_REQUESTS * FLOOD_RECEIPTS))
expect_reply_contains "\"receipts_total\":${want_receipts}" \
    "flood ingested losslessly"
expect_status 200 "$(http GET /metrics)" "metrics after flood"
expect_reply_contains 'churnlab_net_coalesced_batches_total' \
    "coalescer counters exported"
stop_server
echo "   ${want_receipts} receipts ingested across ${FLOOD_CLIENTS} clients"

if [[ "${CHURNLAB_HTTP_NO_SANITIZERS:-0}" != "1" ]]; then
  echo "== net suites under sanitizers =="
  NET_TARGETS=(http_parser_test net_json_test net_admission_test
               net_coalescer_test net_server_test)
  NET_FILTER='Http|ParseReceiptBatch|AdmissionGate|Router|IngestCoalescer|WriteBatchReportJson|WriteCustomerJson|WriteHealthJson|WriteErrorJson|WriteSnapshotJson'
  JOBS=$(nproc 2>/dev/null || echo 2)
  for sanitizer in thread address; do
    build_dir="build-${sanitizer}san"
    echo "-- ${sanitizer} sanitizer (${build_dir}) --"
    cmake -B "${build_dir}" -S . \
      -DCHURNLAB_SANITIZE="${sanitizer}" \
      -DCHURNLAB_BUILD_BENCHMARKS=OFF \
      -DCHURNLAB_BUILD_EXAMPLES=OFF \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${build_dir}" -j "${JOBS}" --target "${NET_TARGETS[@]}"
    (cd "${build_dir}" && ctest --output-on-failure -R "${NET_FILTER}")
  done
fi

echo "check_http: OK"
