#!/usr/bin/env bash
# Builds the concurrency-sensitive test suites under ThreadSanitizer and
# AddressSanitizer (+UBSan) and runs them. Each sanitizer gets its own build
# tree so the instrumented objects never mix with the regular build.
#
# Usage: scripts/check_sanitizers.sh [thread|address ...]
#   (no arguments = both)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS=("$@")
if [[ ${#SANITIZERS[@]} -eq 0 ]]; then
  SANITIZERS=(thread address)
fi

JOBS=$(nproc 2>/dev/null || echo 2)

# The test binaries that exercise threads, the incremental tracker, and the
# parallel evaluation sweeps — built selectively to keep the instrumented
# build small.
TARGETS=(thread_pool_test significance_test significance_equivalence_test
         stability_test stability_model_test online_scorer_test
         grid_search_test bootstrap_test parallel_determinism_test
         serve_test serve_determinism_test serve_memory_test arena_test
         facade_test failpoint_test serve_fault_test snapshot_fuzz_test
         telemetry_concurrency_test flight_recorder_test
         http_parser_test net_json_test net_admission_test
         net_coalescer_test net_server_test)
# gtest registers tests by suite name, so filter on those.
TEST_FILTER='ThreadPool|ParallelFor|Significance|Stability|OnlineScorer|GridSearch|Bootstrap|ParallelDeterminism|CustomerStateStore|ScoringFleet|FleetSnapshot|ServeDeterminism|ServeMemory|BlockArena|Facade|Failpoint|RetryPolicy|RetryWithBackoff|ServeFault|SnapshotFuzz|TelemetryConcurrency|FlightRecorder|Http|ParseReceiptBatch|AdmissionGate|Router|IngestCoalescer|WriteBatchReportJson|WriteCustomerJson|WriteHealthJson|WriteErrorJson|WriteSnapshotJson'

for sanitizer in "${SANITIZERS[@]}"; do
  build_dir="build-${sanitizer}san"
  echo "== ${sanitizer} sanitizer (${build_dir}) =="
  cmake -B "${build_dir}" -S . \
    -DCHURNLAB_SANITIZE="${sanitizer}" \
    -DCHURNLAB_BUILD_BENCHMARKS=OFF \
    -DCHURNLAB_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "${JOBS}" --target "${TARGETS[@]}"
  (cd "${build_dir}" && ctest --output-on-failure -R "${TEST_FILTER}")
  echo "== ${sanitizer} sanitizer: OK =="
  echo
done
