#!/usr/bin/env bash
# Runs the serving-subsystem microbenchmarks (batch-size and shard-count
# ingestion sweeps, snapshot save/restore) and writes BENCH_micro_serve.json
# at the repo root (schema: docs/OBSERVABILITY.md).
#
# Results are byte-identical for any thread count by design, so the suite
# sweeps shards and batch sizes; rerun on a multi-core box to see fan-out
# speedup on the shard sweep.
#
# Usage: scripts/run_serve_bench.sh [build_dir] [out_dir]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-.}
mkdir -p "${OUT_DIR}"

BENCH="${BUILD_DIR}/bench/micro_serve"
if [[ ! -x "${BENCH}" ]]; then
  echo "micro_serve not found; run:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR} --target micro_serve" >&2
  exit 1
fi

OUT="${OUT_DIR}/BENCH_micro_serve.json"
"${BENCH}" --benchmark_min_time=0.1 --metrics-out="${OUT}"
echo "wrote ${OUT}"
