#!/usr/bin/env bash
# Fault-injection gate: runs the failpoint/fault/fuzz suites under
# ThreadSanitizer and AddressSanitizer (+UBSan), sweeps the serve suites
# with CHURNLAB_FAILPOINTS specs armed through the environment, and checks
# the end-to-end acceptance property through the CLI: a replay with a
# 1-in-1000 transient ingest fault (ridden out by shard retries) produces
# byte-identical alerts and snapshots to a fault-free run.
#
# Usage: scripts/check_faults.sh [thread|address ...]
#   (no arguments = both sanitizers, then the CLI A/B check)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS=("$@")
if [[ ${#SANITIZERS[@]} -eq 0 ]]; then
  SANITIZERS=(thread address)
fi

JOBS=$(nproc 2>/dev/null || echo 2)

FAULT_TARGETS=(failpoint_test serve_fault_test snapshot_fuzz_test
               journal_test journal_fuzz_test
               thread_pool_test serve_test serve_determinism_test)
FAULT_FILTER='Failpoint|RetryPolicy|RetryWithBackoff|ServeFault|SnapshotFuzz|Journal|ThreadPool'
# Output-neutral delay faults: they reshuffle thread timing without changing
# results, which is exactly what the determinism suites should survive under
# TSan. The serve determinism tests assert byte-identical output themselves.
SWEEP_SPECS=(
  ''
  'serve.shard.task=delay(1)@every(3)'
  'serve.ingest.receipt=delay(1)@every(97)'
)
SWEEP_FILTER='ServeDeterminism|ScoringFleet|FleetSnapshot'

for sanitizer in "${SANITIZERS[@]}"; do
  build_dir="build-${sanitizer}san"
  echo "== ${sanitizer} sanitizer: fault suites (${build_dir}) =="
  cmake -B "${build_dir}" -S . \
    -DCHURNLAB_SANITIZE="${sanitizer}" \
    -DCHURNLAB_BUILD_BENCHMARKS=OFF \
    -DCHURNLAB_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "${JOBS}" --target "${FAULT_TARGETS[@]}"
  (cd "${build_dir}" && ctest --output-on-failure -R "${FAULT_FILTER}")
  for spec in "${SWEEP_SPECS[@]}"; do
    echo "-- ${sanitizer}: sweep CHURNLAB_FAILPOINTS='${spec}' --"
    (cd "${build_dir}" &&
     CHURNLAB_FAILPOINTS="${spec}" ctest --output-on-failure -R "${SWEEP_FILTER}")
  done
  echo "== ${sanitizer} sanitizer: OK =="
  echo
done

# --- CLI A/B: transient faults must be invisible in the output --------------

echo "== CLI A/B: transient ingest faults are byte-invisible =="
cmake --build build -j "${JOBS}" --target churnlab_cli
CLI=build/tools/churnlab
[[ -x "${CLI}" ]] || CLI=$(find build -name churnlab -type f | head -1)

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

"${CLI}" simulate --out "${WORK}/data.clb" --loyal 120 --defecting 120 \
  --months 28 --seed 7 > /dev/null

run_replay() {  # <tag> [extra serve-replay flags...]
  local tag=$1
  shift
  "${CLI}" --metrics-out="${WORK}/${tag}.metrics.json" serve-replay \
    --data "${WORK}/data.clb" --batch-days 7 \
    --snapshot-out "${WORK}/${tag}.snap" "$@" 2> /dev/null \
    | grep -v '^wrote fleet snapshot to ' > "${WORK}/${tag}.out"
}

run_replay baseline --threads 1
run_replay faulty1 --threads 1 --max-shard-retries 64 \
  --failpoints 'serve.ingest.receipt=throw@every(1000)'
run_replay faulty4 --threads 4 --max-shard-retries 64 \
  --failpoints 'serve.ingest.receipt=throw@every(1000)'

for tag in faulty1 faulty4; do
  cmp "${WORK}/baseline.snap" "${WORK}/${tag}.snap" \
    || { echo "FAIL: ${tag} snapshot differs from fault-free baseline"; exit 1; }
  diff "${WORK}/baseline.out" "${WORK}/${tag}.out" \
    || { echo "FAIL: ${tag} replay output differs from fault-free baseline"; exit 1; }
done

# The faults really fired: the injected-fault counter is in the exported
# telemetry and nonzero (the document is compact single-line JSON).
grep -q '"churnlab.failpoint.triggered":' "${WORK}/faulty1.metrics.json" \
  || { echo "FAIL: failpoint.triggered missing from telemetry"; exit 1; }
if grep -q '"churnlab.failpoint.triggered":0[,}]' "${WORK}/faulty1.metrics.json"; then
  echo "FAIL: failpoints armed but never triggered"; exit 1
fi

# --- Durability: kill -9 crash-recovery chaos harness -----------------------
# The sanitizer journal suites already ran above via the fault suites'
# build dirs; check_crash.sh re-running them would rebuild nothing new, so
# the harness here covers the process-death matrix only.
echo "== crash-recovery chaos harness =="
CHURNLAB_CRASH_NO_SANITIZERS=1 "$(dirname "$0")/check_crash.sh" build 2

echo "== fault checks: OK =="
