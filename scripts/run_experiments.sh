#!/usr/bin/env bash
# Regenerates every paper figure/table and ablation into results/.
#
# Usage: scripts/run_experiments.sh [build_dir] [results_dir]
set -euo pipefail

BUILD_DIR=${1:-build}
RESULTS_DIR=${2:-results}

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "bench binaries not found; run:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

mkdir -p "${RESULTS_DIR}"
for bench in "${BUILD_DIR}"/bench/*; do
  name=$(basename "${bench}")
  echo "== ${name} =="
  case "${name}" in
    fig1_auroc|fig2_trajectory|param_search)
      # These accept an optional CSV output path.
      "${bench}" "${RESULTS_DIR}/${name}.csv" | tee "${RESULTS_DIR}/${name}.txt"
      ;;
    micro_*)
      "${bench}" --benchmark_min_time=0.1 | tee "${RESULTS_DIR}/${name}.txt"
      ;;
    *)
      "${bench}" | tee "${RESULTS_DIR}/${name}.txt"
      ;;
  esac
  echo
done

echo "results written to ${RESULTS_DIR}/"
