#!/usr/bin/env bash
# Runs the micro benchmark suites through the telemetry-exporting harness
# and writes one BENCH_<suite>.json per suite plus a merged BENCH_micro.json
# at the repo root (schema: docs/OBSERVABILITY.md).
#
# Usage: scripts/run_benches.sh [build_dir] [out_dir]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-.}
mkdir -p "${OUT_DIR}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "bench binaries not found; run:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

suites=()
for bench in "${BUILD_DIR}"/bench/micro_*; do
  name=$(basename "${bench}")
  out="${OUT_DIR}/BENCH_${name}.json"
  echo "== ${name} =="
  "${bench}" --benchmark_min_time=0.1 --metrics-out="${out}"
  suites+=("${out}")
  echo
done

# Merge the per-suite documents into BENCH_micro.json: a JSON array keeps
# each suite's version stamp and telemetry snapshot intact.
merged="${OUT_DIR}/BENCH_micro.json"
{
  printf '['
  first=1
  for suite in "${suites[@]}"; do
    [[ ${first} -eq 1 ]] || printf ','
    first=0
    cat "${suite}"
  done
  printf ']\n'
} > "${merged}"

echo "wrote ${merged} (${#suites[@]} suites)"

# Guard against perf drift: compare the fresh documents against the
# committed baselines. Opt out (e.g. on noisy shared machines) with
# CHURNLAB_BENCH_NO_DRIFT_CHECK=1; tune the threshold with
# CHURNLAB_BENCH_DRIFT_PCT (default 10).
if [[ "${CHURNLAB_BENCH_NO_DRIFT_CHECK:-0}" != "1" ]]; then
  "$(dirname "$0")/check_bench_drift.sh" "${OUT_DIR}" \
      "${CHURNLAB_BENCH_DRIFT_PCT:-10}"
fi
