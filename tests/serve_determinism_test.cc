// Determinism guarantees of the serving subsystem, replaying a simulated
// population as a day-ordered stream:
//
//   1. Alerts and snapshots are byte-identical for any thread count.
//   2. Alerts are identical for any shard count.
//   3. Snapshot -> restore -> continue is bit-identical to uninterrupted
//      streaming (the tentpole guarantee of the snapshot format).
//   4. Fleet alerts match a per-customer replay through raw
//      core::StabilityMonitor instances (the fleet adds sharding and
//      batching, never different math).

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "core/monitor.h"
#include "core/symbol_mapper.h"
#include "datagen/scenario.h"
#include "retail/dataset.h"
#include "serve/fleet.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

constexpr Day kBatchDays = 7;

const retail::Dataset& TestDataset() {
  static const retail::Dataset* dataset = [] {
    datagen::PaperScenarioConfig config;
    config.population.num_loyal = 30;
    config.population.num_defecting = 30;
    config.num_months = 20;
    config.seed = 99;
    return new retail::Dataset(
        datagen::MakePaperDataset(config).ValueOrDie());
  }();
  return *dataset;
}

// The dataset replayed as a production stream: day-ordered, with each
// customer's receipts kept chronological (AllReceipts is (customer, day)-
// sorted, so a stable sort by day preserves per-customer order).
const std::vector<Receipt>& ReplayStream() {
  static const std::vector<Receipt>* stream = [] {
    const std::span<const Receipt> all =
        TestDataset().store().AllReceipts();
    auto* replay = new std::vector<Receipt>(all.begin(), all.end());
    std::stable_sort(replay->begin(), replay->end(),
                     [](const Receipt& a, const Receipt& b) {
                       return a.day < b.day;
                     });
    return replay;
  }();
  return *stream;
}

FleetOptions TestOptions(size_t num_threads, size_t num_shards) {
  FleetOptions options;
  options.scorer.significance.alpha = 2.0;
  options.scorer.window_span_days = 2 * retail::kDaysPerMonth;
  options.policy.beta = 0.6;
  options.policy.drop_threshold = 0.3;
  options.policy.warmup_windows = 2;
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  options.granularity = retail::Granularity::kSegment;
  return options;
}

// Canonical text form of an alert log, for byte-for-byte comparison.
std::string FormatAlerts(const std::vector<FleetAlert>& alerts) {
  std::string out;
  char line[160];
  for (const FleetAlert& alert : alerts) {
    std::snprintf(line, sizeof(line), "%llu@%zu w%d k%d s=%.17g d=%.17g\n",
                  static_cast<unsigned long long>(alert.customer),
                  alert.batch_index, alert.alert.window_index,
                  static_cast<int>(alert.alert.kind), alert.alert.stability,
                  alert.alert.drop);
    out += line;
  }
  return out;
}

std::string SnapshotOf(const ScoringFleet& fleet) {
  BinaryWriter writer;
  EXPECT_TRUE(fleet.SaveSnapshot(&writer).ok());
  return writer.buffer();
}

struct ReplayResult {
  std::string alert_log;
  std::string snapshot;
  size_t num_customers = 0;
};

// Replays the stream in `kBatchDays`-day batches. When `split_batch` >= 0,
// the fleet is snapshotted after that many batches, torn down, restored
// (with `resume_threads` workers and `resume_layout` storage), and the
// remainder replayed through the restored fleet — exercising the snapshot
// mid-stream.
ReplayResult Replay(size_t num_threads, size_t num_shards,
                    int split_batch = -1, size_t resume_threads = 0,
                    StateLayout layout = StateLayout::kCompact,
                    StateLayout resume_layout = StateLayout::kCompact) {
  const std::vector<Receipt>& replay = ReplayStream();
  FleetOptions options = TestOptions(num_threads, num_shards);
  options.layout = layout;
  auto fleet =
      ScoringFleet::Make(options, &TestDataset().taxonomy()).ValueOrDie();
  ReplayResult result;
  std::vector<FleetAlert> alerts;
  int batch_number = 0;
  for (size_t begin = 0; begin < replay.size();) {
    if (batch_number == split_batch) {
      // Tear down and resurrect the fleet from its snapshot mid-stream.
      const std::string snapshot = SnapshotOf(fleet);
      BinaryReader reader(snapshot);
      fleet = ScoringFleet::Restore(&reader, &TestDataset().taxonomy(),
                                    resume_threads, resume_layout)
                  .ValueOrDie();
    }
    const Day batch_end = replay[begin].day + kBatchDays;
    size_t end = begin;
    while (end < replay.size() && replay[end].day < batch_end) ++end;
    auto report = fleet
                      .IngestBatch(std::span<const Receipt>(
                          replay.data() + begin, end - begin))
                      .ValueOrDie();
    alerts.insert(alerts.end(), report.alerts.begin(), report.alerts.end());
    begin = end;
    ++batch_number;
  }
  auto tail = fleet.FinishAll().ValueOrDie();
  alerts.insert(alerts.end(), tail.alerts.begin(), tail.alerts.end());
  result.alert_log = FormatAlerts(alerts);
  result.snapshot = SnapshotOf(fleet);
  result.num_customers = fleet.NumCustomers();
  return result;
}

TEST(ServeDeterminism, ThreadCountNeverChangesAlertsOrSnapshot) {
  const ReplayResult baseline = Replay(/*num_threads=*/1, /*num_shards=*/16);
  EXPECT_FALSE(baseline.alert_log.empty());
  EXPECT_EQ(baseline.num_customers, 60u);
  for (const size_t threads : {size_t{4}, size_t{16}}) {
    const ReplayResult run = Replay(threads, /*num_shards=*/16);
    EXPECT_EQ(run.alert_log, baseline.alert_log) << threads << " threads";
    EXPECT_EQ(run.snapshot, baseline.snapshot) << threads << " threads";
  }
}

TEST(ServeDeterminism, ShardCountNeverChangesAlerts) {
  const ReplayResult baseline = Replay(/*num_threads=*/2, /*num_shards=*/1);
  for (const size_t shards : {size_t{4}, size_t{16}, size_t{64}}) {
    const ReplayResult run = Replay(/*num_threads=*/2, shards);
    EXPECT_EQ(run.alert_log, baseline.alert_log) << shards << " shards";
  }
}

TEST(ServeDeterminism, SnapshotRestoreContinueIsBitIdentical) {
  const ReplayResult uninterrupted =
      Replay(/*num_threads=*/4, /*num_shards=*/16);
  // Interrupt early, in the middle, and near the end of the stream; resume
  // with a different thread count to prove threads are a pure runtime
  // concern.
  for (const int split : {1, 20, 60}) {
    const ReplayResult resumed = Replay(/*num_threads=*/4, /*num_shards=*/16,
                                        split, /*resume_threads=*/2);
    EXPECT_EQ(resumed.alert_log, uninterrupted.alert_log)
        << "split at batch " << split;
    EXPECT_EQ(resumed.snapshot, uninterrupted.snapshot)
        << "split at batch " << split;
  }
}

TEST(ServeDeterminism, StorageLayoutNeverChangesAlertsOrSnapshot) {
  // The compact (SoA + arena) and heap layouts run the same kernels over
  // different storage; alerts and snapshot bytes must be identical.
  const ReplayResult compact = Replay(/*num_threads=*/2, /*num_shards=*/16);
  const ReplayResult heap =
      Replay(/*num_threads=*/2, /*num_shards=*/16, /*split_batch=*/-1,
             /*resume_threads=*/0, StateLayout::kHeap, StateLayout::kHeap);
  EXPECT_FALSE(compact.alert_log.empty());
  EXPECT_EQ(heap.alert_log, compact.alert_log);
  EXPECT_EQ(heap.snapshot, compact.snapshot);
}

TEST(ServeDeterminism, CrossLayoutRestoreContinuesBitIdentically) {
  // The layout is never serialized, so a snapshot taken under one layout
  // restores under the other and continues bit-identically.
  const ReplayResult uninterrupted =
      Replay(/*num_threads=*/2, /*num_shards=*/16);
  const ReplayResult compact_to_heap =
      Replay(/*num_threads=*/2, /*num_shards=*/16, /*split_batch=*/20,
             /*resume_threads=*/2, StateLayout::kCompact, StateLayout::kHeap);
  const ReplayResult heap_to_compact =
      Replay(/*num_threads=*/2, /*num_shards=*/16, /*split_batch=*/20,
             /*resume_threads=*/2, StateLayout::kHeap, StateLayout::kCompact);
  EXPECT_EQ(compact_to_heap.alert_log, uninterrupted.alert_log);
  EXPECT_EQ(compact_to_heap.snapshot, uninterrupted.snapshot);
  EXPECT_EQ(heap_to_compact.alert_log, uninterrupted.alert_log);
  EXPECT_EQ(heap_to_compact.snapshot, uninterrupted.snapshot);
}

// Alert key used for the fleet vs raw-monitor cross-check: FinishAll alerts
// carry batch_index 0, so compare (customer, window, kind, values) only.
using AlertKey = std::tuple<CustomerId, int32_t, int, double, double>;

std::vector<AlertKey> Keys(const std::vector<FleetAlert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const FleetAlert& alert : alerts) {
    keys.emplace_back(alert.customer, alert.alert.window_index,
                      static_cast<int>(alert.alert.kind),
                      alert.alert.stability, alert.alert.drop);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ServeDeterminism, FleetMatchesPerCustomerMonitorReplay) {
  const retail::Dataset& dataset = TestDataset();
  const FleetOptions options = TestOptions(/*num_threads=*/4,
                                           /*num_shards=*/16);

  // Fleet side: batched day-ordered replay.
  auto fleet =
      ScoringFleet::Make(options, &dataset.taxonomy()).ValueOrDie();
  std::vector<FleetAlert> fleet_alerts;
  const std::vector<Receipt>& replay = ReplayStream();
  for (size_t begin = 0; begin < replay.size();) {
    const Day batch_end = replay[begin].day + kBatchDays;
    size_t end = begin;
    while (end < replay.size() && replay[end].day < batch_end) ++end;
    auto report = fleet
                      .IngestBatch(std::span<const Receipt>(
                          replay.data() + begin, end - begin))
                      .ValueOrDie();
    fleet_alerts.insert(fleet_alerts.end(), report.alerts.begin(),
                        report.alerts.end());
    begin = end;
  }
  auto tail = fleet.FinishAll().ValueOrDie();
  fleet_alerts.insert(fleet_alerts.end(), tail.alerts.begin(),
                      tail.alerts.end());

  // Reference side: one raw StabilityMonitor per customer, fed that
  // customer's history directly (same symbol mapping as the fleet: sorted,
  // deduplicated mapped items).
  auto mapper = core::SymbolMapper::Make(options.granularity,
                                         &dataset.taxonomy())
                    .ValueOrDie();
  std::vector<FleetAlert> reference_alerts;
  for (const CustomerId customer : dataset.store().Customers()) {
    auto monitor =
        core::StabilityMonitor::Make(options.scorer, options.policy)
            .ValueOrDie();
    std::vector<core::Symbol> symbols;
    const auto record = [&](std::vector<core::StabilityAlert> alerts) {
      for (core::StabilityAlert& alert : alerts) {
        reference_alerts.push_back(FleetAlert{customer, 0, alert});
      }
    };
    for (const Receipt& receipt : dataset.store().History(customer)) {
      symbols.clear();
      for (const retail::ItemId item : receipt.items) {
        symbols.push_back(mapper.Map(item));
      }
      std::sort(symbols.begin(), symbols.end());
      symbols.erase(std::unique(symbols.begin(), symbols.end()),
                    symbols.end());
      record(monitor.Observe(receipt.day, symbols).ValueOrDie());
    }
    record(monitor.Finish().ValueOrDie());
  }

  EXPECT_EQ(Keys(fleet_alerts), Keys(reference_alerts));
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
