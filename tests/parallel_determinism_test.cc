// Multi-threaded evaluation must be bitwise identical to single-threaded:
// grid search cells, the Figure 1 experiment (per-window AUROC + bootstrap
// intervals), and the bootstrap itself are all compared with exact
// double equality between --threads 1 and --threads 4 runs.

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/scenario.h"
#include "eval/bootstrap.h"
#include "eval/experiment.h"
#include "eval/grid_search.h"

namespace churnlab {
namespace eval {
namespace {

retail::Dataset MakeDataset() {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 80;
  config.population.num_defecting = 80;
  config.seed = 77;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

TEST(ParallelDeterminism, GridSearchCellsBitwiseEqual) {
  const retail::Dataset dataset = MakeDataset();
  GridSearchOptions options;
  options.window_spans_months = {1, 2};
  options.alphas = {1.5, 2.0, 3.0};
  options.folds = 3;
  options.num_threads = 1;
  const GridSearchResult sequential =
      StabilityGridSearch::Make(options).ValueOrDie().Run(dataset).ValueOrDie();
  options.num_threads = 4;
  const GridSearchResult parallel =
      StabilityGridSearch::Make(options).ValueOrDie().Run(dataset).ValueOrDie();

  ASSERT_EQ(sequential.cells.size(), parallel.cells.size());
  for (size_t i = 0; i < sequential.cells.size(); ++i) {
    EXPECT_EQ(sequential.cells[i].window_span_months,
              parallel.cells[i].window_span_months);
    EXPECT_EQ(sequential.cells[i].alpha, parallel.cells[i].alpha);
    // Exact equality, not NEAR: the cells must not depend on scheduling.
    EXPECT_EQ(sequential.cells[i].mean_auroc, parallel.cells[i].mean_auroc);
    EXPECT_EQ(sequential.cells[i].std_auroc, parallel.cells[i].std_auroc);
  }
  EXPECT_EQ(sequential.best.window_span_months,
            parallel.best.window_span_months);
  EXPECT_EQ(sequential.best.alpha, parallel.best.alpha);
  EXPECT_EQ(sequential.best.mean_auroc, parallel.best.mean_auroc);
}

TEST(ParallelDeterminism, Figure1RowsBitwiseEqual) {
  const retail::Dataset dataset = MakeDataset();
  Figure1Options options;
  options.bootstrap_resamples = 60;
  options.num_threads = 1;
  const Figure1Result sequential =
      ExperimentRunner::Make(options).ValueOrDie().RunOnDataset(dataset).ValueOrDie();
  options.num_threads = 4;
  options.stability.num_threads = 4;  // model scoring sweep too
  const Figure1Result parallel =
      ExperimentRunner::Make(options).ValueOrDie().RunOnDataset(dataset).ValueOrDie();

  ASSERT_EQ(sequential.rows.size(), parallel.rows.size());
  ASSERT_FALSE(sequential.rows.empty());
  for (size_t i = 0; i < sequential.rows.size(); ++i) {
    EXPECT_EQ(sequential.rows[i].report_month, parallel.rows[i].report_month);
    EXPECT_EQ(sequential.rows[i].stability_auroc,
              parallel.rows[i].stability_auroc);
    EXPECT_EQ(sequential.rows[i].rfm_auroc, parallel.rows[i].rfm_auroc);
    EXPECT_EQ(sequential.rows[i].stability_auroc_lower,
              parallel.rows[i].stability_auroc_lower);
    EXPECT_EQ(sequential.rows[i].stability_auroc_upper,
              parallel.rows[i].stability_auroc_upper);
  }
}

TEST(ParallelDeterminism, BootstrapIntervalBitwiseEqual) {
  Rng rng(19);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int label = rng.Bernoulli(0.4) ? 1 : 0;
    scores.push_back(rng.Normal(label * -0.8, 1.0));
    labels.push_back(label);
  }
  BootstrapOptions options;
  options.resamples = 500;
  options.num_threads = 1;
  const ConfidenceInterval sequential =
      BootstrapAuroc(scores, labels, ScoreOrientation::kLowerIsPositive,
                     options)
          .ValueOrDie();
  options.num_threads = 4;
  const ConfidenceInterval parallel =
      BootstrapAuroc(scores, labels, ScoreOrientation::kLowerIsPositive,
                     options)
          .ValueOrDie();
  EXPECT_EQ(sequential.estimate, parallel.estimate);
  EXPECT_EQ(sequential.lower, parallel.lower);
  EXPECT_EQ(sequential.upper, parallel.upper);
}

TEST(ParallelDeterminism, AurocPerWindowBitwiseEqual) {
  const retail::Dataset dataset = MakeDataset();
  const Figure1Options defaults;
  const auto model =
      core::StabilityModel::Make(defaults.stability).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto sequential =
      AurocPerWindow(dataset, scores, ScoreOrientation::kLowerIsPositive, 2,
                     1)
          .ValueOrDie();
  const auto parallel =
      AurocPerWindow(dataset, scores, ScoreOrientation::kLowerIsPositive, 2,
                     4)
          .ValueOrDie();
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].window, parallel[i].window);
    EXPECT_EQ(sequential[i].auroc, parallel[i].auroc);
  }
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
