#include <gtest/gtest.h>

#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "retail/dataset.h"

namespace churnlab {
namespace retail {
namespace {

Dataset MakeDataset() {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 30;
  config.population.num_defecting = 30;
  config.seed = 88;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

TEST(DatasetFilter, DayRangeKeepsOnlyInRangeReceipts) {
  const Dataset dataset = MakeDataset();
  const Day begin = 6 * kDaysPerMonth;
  const Day end = 12 * kDaysPerMonth;
  const Dataset filtered =
      dataset.FilterByDayRange(begin, end).ValueOrDie();
  EXPECT_GT(filtered.store().num_receipts(), 0u);
  EXPECT_LT(filtered.store().num_receipts(), dataset.store().num_receipts());
  for (const Receipt& receipt : filtered.store().AllReceipts()) {
    EXPECT_GE(receipt.day, begin);
    EXPECT_LT(receipt.day, end);
  }
  // Labels, dictionary and taxonomy are preserved.
  EXPECT_EQ(filtered.labels().size(), dataset.labels().size());
  EXPECT_EQ(filtered.items().size(), dataset.items().size());
  EXPECT_EQ(filtered.taxonomy().num_segments(),
            dataset.taxonomy().num_segments());
}

TEST(DatasetFilter, DayRangeMatchesManualCount) {
  const Dataset dataset = MakeDataset();
  const Day begin = 100;
  const Day end = 400;
  size_t expected = 0;
  for (const Receipt& receipt : dataset.store().AllReceipts()) {
    if (receipt.day >= begin && receipt.day < end) ++expected;
  }
  const Dataset filtered =
      dataset.FilterByDayRange(begin, end).ValueOrDie();
  EXPECT_EQ(filtered.store().num_receipts(), expected);
}

TEST(DatasetFilter, PrefixViewMatchesTruncatedScoring) {
  // Scoring a "data through month 16" view must equal scoring the full
  // dataset with num_windows capped — the temporal-split use case.
  const Dataset dataset = MakeDataset();
  const Dataset prefix =
      dataset.FilterByDayRange(0, 16 * kDaysPerMonth).ValueOrDie();

  core::StabilityModelOptions capped;
  capped.significance.alpha = 2.0;
  capped.window_span_months = 2;
  capped.num_windows = 8;  // windows ending at months 2..16
  const auto model = core::StabilityModel::Make(capped).ValueOrDie();
  const auto full_scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto prefix_scores = model.ScoreDataset(prefix).ValueOrDie();
  ASSERT_EQ(full_scores.num_windows(), prefix_scores.num_windows());
  for (const CustomerId customer : prefix.store().Customers()) {
    const size_t row_full = full_scores.RowOf(customer).ValueOrDie();
    const size_t row_prefix = prefix_scores.RowOf(customer).ValueOrDie();
    for (int32_t window = 0; window < full_scores.num_windows(); ++window) {
      ASSERT_DOUBLE_EQ(full_scores.At(row_full, window),
                       prefix_scores.At(row_prefix, window));
    }
  }
}

TEST(DatasetFilter, CustomersSubset) {
  const Dataset dataset = MakeDataset();
  const std::vector<CustomerId> wanted = {0, 5, 17};
  const Dataset filtered = dataset.FilterCustomers(wanted).ValueOrDie();
  EXPECT_EQ(filtered.store().num_customers(), 3u);
  EXPECT_EQ(filtered.store().Customers(), wanted);
  EXPECT_EQ(filtered.labels().size(), 3u);
  for (const CustomerId customer : wanted) {
    EXPECT_EQ(filtered.store().History(customer).size(),
              dataset.store().History(customer).size());
    EXPECT_EQ(filtered.LabelOf(customer).cohort,
              dataset.LabelOf(customer).cohort);
  }
}

TEST(DatasetFilter, UnknownCustomersIgnored) {
  const Dataset dataset = MakeDataset();
  const Dataset filtered =
      dataset.FilterCustomers({0, 99999}).ValueOrDie();
  EXPECT_EQ(filtered.store().num_customers(), 1u);
}

TEST(DatasetFilter, EmptyCustomerListGivesEmptyStore) {
  const Dataset dataset = MakeDataset();
  const Dataset filtered = dataset.FilterCustomers({}).ValueOrDie();
  EXPECT_EQ(filtered.store().num_receipts(), 0u);
  EXPECT_TRUE(filtered.store().finalized());
}

TEST(DatasetFilter, ValidationErrors) {
  const Dataset dataset = MakeDataset();
  EXPECT_TRUE(
      dataset.FilterByDayRange(100, 100).status().IsInvalidArgument());
  EXPECT_TRUE(
      dataset.FilterByDayRange(200, 100).status().IsInvalidArgument());
  Dataset unfinalized;
  Receipt receipt;
  receipt.customer = 1;
  receipt.day = 0;
  receipt.items = {0};
  ASSERT_TRUE(unfinalized.mutable_store().Append(std::move(receipt)).ok());
  EXPECT_FALSE(unfinalized.FilterByDayRange(0, 10).ok());
  EXPECT_FALSE(unfinalized.FilterCustomers({1}).ok());
}

}  // namespace
}  // namespace retail
}  // namespace churnlab
