#include "eval/grid_search.h"

#include <gtest/gtest.h>

#include <utility>

#include "common/macros.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace eval {
namespace {


/// Make-then-Run in one step, mirroring how callers now use the API.
Result<GridSearchResult> Search(const retail::Dataset& dataset,
                                GridSearchOptions options) {
  CHURNLAB_ASSIGN_OR_RETURN(const StabilityGridSearch search,
                            StabilityGridSearch::Make(std::move(options)));
  return search.Run(dataset);
}

retail::Dataset MakeDataset() {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 120;
  config.population.num_defecting = 120;
  config.seed = 44;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

GridSearchOptions SmallGrid() {
  GridSearchOptions options;
  options.window_spans_months = {1, 2};
  options.alphas = {1.5, 2.0};
  options.folds = 4;
  options.onset_month = 18;
  return options;
}

TEST(StabilityGridSearch, EvaluatesEveryCell) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult result =
      Search(dataset, SmallGrid()).ValueOrDie();
  ASSERT_EQ(result.cells.size(), 4u);
  for (const GridSearchCell& cell : result.cells) {
    EXPECT_GE(cell.mean_auroc, 0.0);
    EXPECT_LE(cell.mean_auroc, 1.0);
    EXPECT_GE(cell.std_auroc, 0.0);
  }
}

TEST(StabilityGridSearch, BestCellIsArgmax) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult result =
      Search(dataset, SmallGrid()).ValueOrDie();
  for (const GridSearchCell& cell : result.cells) {
    EXPECT_LE(cell.mean_auroc, result.best.mean_auroc);
  }
}

TEST(StabilityGridSearch, PostOnsetObjectiveBeatsChance) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult result =
      Search(dataset, SmallGrid()).ValueOrDie();
  EXPECT_GT(result.best.mean_auroc, 0.65);
}

TEST(StabilityGridSearch, DeterministicGivenSeed) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult a =
      Search(dataset, SmallGrid()).ValueOrDie();
  const GridSearchResult b =
      Search(dataset, SmallGrid()).ValueOrDie();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].mean_auroc, b.cells[i].mean_auroc);
  }
}

TEST(StabilityGridSearch, ValidationErrors) {
  const retail::Dataset dataset = MakeDataset();
  GridSearchOptions empty_grid = SmallGrid();
  empty_grid.alphas.clear();
  EXPECT_FALSE(Search(dataset, empty_grid).ok());

  GridSearchOptions bad_folds = SmallGrid();
  bad_folds.folds = 1;
  EXPECT_FALSE(Search(dataset, bad_folds).ok());

  GridSearchOptions late_onset = SmallGrid();
  late_onset.onset_month = 100;  // no windows in objective horizon
  EXPECT_FALSE(Search(dataset, late_onset).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
