#include "eval/grid_search.h"

#include <gtest/gtest.h>

#include "datagen/scenario.h"

namespace churnlab {
namespace eval {
namespace {

retail::Dataset MakeDataset() {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 120;
  config.population.num_defecting = 120;
  config.seed = 44;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

GridSearchOptions SmallGrid() {
  GridSearchOptions options;
  options.window_spans_months = {1, 2};
  options.alphas = {1.5, 2.0};
  options.folds = 4;
  options.onset_month = 18;
  return options;
}

TEST(StabilityGridSearch, EvaluatesEveryCell) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult result =
      StabilityGridSearch::Run(dataset, SmallGrid()).ValueOrDie();
  ASSERT_EQ(result.cells.size(), 4u);
  for (const GridSearchCell& cell : result.cells) {
    EXPECT_GE(cell.mean_auroc, 0.0);
    EXPECT_LE(cell.mean_auroc, 1.0);
    EXPECT_GE(cell.std_auroc, 0.0);
  }
}

TEST(StabilityGridSearch, BestCellIsArgmax) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult result =
      StabilityGridSearch::Run(dataset, SmallGrid()).ValueOrDie();
  for (const GridSearchCell& cell : result.cells) {
    EXPECT_LE(cell.mean_auroc, result.best.mean_auroc);
  }
}

TEST(StabilityGridSearch, PostOnsetObjectiveBeatsChance) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult result =
      StabilityGridSearch::Run(dataset, SmallGrid()).ValueOrDie();
  EXPECT_GT(result.best.mean_auroc, 0.65);
}

TEST(StabilityGridSearch, DeterministicGivenSeed) {
  const retail::Dataset dataset = MakeDataset();
  const GridSearchResult a =
      StabilityGridSearch::Run(dataset, SmallGrid()).ValueOrDie();
  const GridSearchResult b =
      StabilityGridSearch::Run(dataset, SmallGrid()).ValueOrDie();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].mean_auroc, b.cells[i].mean_auroc);
  }
}

TEST(StabilityGridSearch, ValidationErrors) {
  const retail::Dataset dataset = MakeDataset();
  GridSearchOptions empty_grid = SmallGrid();
  empty_grid.alphas.clear();
  EXPECT_FALSE(StabilityGridSearch::Run(dataset, empty_grid).ok());

  GridSearchOptions bad_folds = SmallGrid();
  bad_folds.folds = 1;
  EXPECT_FALSE(StabilityGridSearch::Run(dataset, bad_folds).ok());

  GridSearchOptions late_onset = SmallGrid();
  late_onset.onset_month = 100;  // no windows in objective horizon
  EXPECT_FALSE(StabilityGridSearch::Run(dataset, late_onset).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
