#include "eval/roc.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"

namespace churnlab {
namespace eval {
namespace {

constexpr auto kHigher = ScoreOrientation::kHigherIsPositive;
constexpr auto kLower = ScoreOrientation::kLowerIsPositive;

TEST(Auroc, PerfectClassifier) {
  EXPECT_DOUBLE_EQ(
      Auroc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}, kHigher).ValueOrDie(), 1.0);
}

TEST(Auroc, PerfectlyWrongClassifier) {
  EXPECT_DOUBLE_EQ(
      Auroc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}, kHigher).ValueOrDie(), 0.0);
}

TEST(Auroc, ConstantScoresGiveChance) {
  EXPECT_DOUBLE_EQ(
      Auroc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}, kHigher).ValueOrDie(), 0.5);
}

TEST(Auroc, HandComputedWithTies) {
  // scores: pos {3, 2}, neg {2, 1}. Pairs: (3,2)+, (3,1)+, (2,2) tie=0.5,
  // (2,1)+ -> U = 3.5 / 4 = 0.875.
  EXPECT_DOUBLE_EQ(
      Auroc({3.0, 2.0, 2.0, 1.0}, {1, 1, 0, 0}, kHigher).ValueOrDie(),
      0.875);
}

TEST(Auroc, OrientationFlipsComplement) {
  const std::vector<double> scores = {0.1, 0.4, 0.35, 0.8};
  const std::vector<int> labels = {0, 0, 1, 1};
  const double higher = Auroc(scores, labels, kHigher).ValueOrDie();
  const double lower = Auroc(scores, labels, kLower).ValueOrDie();
  EXPECT_NEAR(higher + lower, 1.0, 1e-12);
}

TEST(Auroc, LowerIsPositiveForStabilityStyleScores) {
  // Defectors (label 1) have LOW stability.
  EXPECT_DOUBLE_EQ(
      Auroc({0.2, 0.3, 0.9, 0.95}, {1, 1, 0, 0}, kLower).ValueOrDie(), 1.0);
}

TEST(Auroc, InvariantToMonotoneTransform) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.Bernoulli(0.4) ? 1 : 0;
    scores.push_back(rng.Normal(label * 0.8, 1.0));
    labels.push_back(label);
  }
  std::vector<double> transformed;
  for (const double s : scores) transformed.push_back(std::exp(2.0 * s) + 3.0);
  EXPECT_NEAR(Auroc(scores, labels, kHigher).ValueOrDie(),
              Auroc(transformed, labels, kHigher).ValueOrDie(), 1e-12);
}

TEST(Auroc, RandomScoresNearHalf) {
  Rng rng(7);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(Auroc(scores, labels, kHigher).ValueOrDie(), 0.5, 0.03);
}

TEST(Auroc, ValidationErrors) {
  EXPECT_FALSE(Auroc({}, {}, kHigher).ok());
  EXPECT_FALSE(Auroc({0.5}, {1, 0}, kHigher).ok());
  EXPECT_FALSE(Auroc({0.5, 0.6}, {1, 1}, kHigher).ok());  // one class
  EXPECT_FALSE(Auroc({0.5, 0.6}, {0, 0}, kHigher).ok());
  EXPECT_FALSE(Auroc({0.5, 0.6}, {0, 2}, kHigher).ok());
}

TEST(Auroc, RejectsNonFiniteScores) {
  // Regression: a NaN compares false with everything, so the ranking pass
  // used to silently count NaN-vs-anything pairs as ties and return a
  // plausible-looking value instead of failing.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const auto with_nan = Auroc({0.9, nan, 0.2, 0.1}, {1, 1, 0, 0}, kHigher);
  EXPECT_TRUE(with_nan.status().IsInvalidArgument())
      << with_nan.status().ToString();
  EXPECT_TRUE(
      Auroc({0.9, inf, 0.2, 0.1}, {1, 1, 0, 0}, kHigher).status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      Auroc({0.9, -inf, 0.2, 0.1}, {1, 1, 0, 0}, kHigher).status()
          .IsInvalidArgument());
}

TEST(RocCurve, RejectsNonFiniteScores) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(
      RocCurve({nan, 0.5, 0.2, 0.1}, {1, 1, 0, 0}, kHigher).status()
          .IsInvalidArgument());
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  Rng rng(11);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const int label = rng.Bernoulli(0.3) ? 1 : 0;
    scores.push_back(rng.Normal(label * 1.0, 1.0));
    labels.push_back(label);
  }
  const auto curve = RocCurve(scores, labels, kHigher).ValueOrDie();
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocCurve, TrapezoidalAreaMatchesRankAuroc) {
  // Property: the two AUROC computations agree (ties included).
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> scores;
    std::vector<int> labels;
    for (int i = 0; i < 300; ++i) {
      const int label = rng.Bernoulli(0.4) ? 1 : 0;
      // Quantised scores force ties.
      scores.push_back(
          std::round(rng.Normal(label * 0.7, 1.0) * 4.0) / 4.0);
      labels.push_back(label);
    }
    const double rank_auroc = Auroc(scores, labels, kHigher).ValueOrDie();
    const auto curve = RocCurve(scores, labels, kHigher).ValueOrDie();
    EXPECT_NEAR(TrapezoidalArea(curve), rank_auroc, 1e-12);
  }
}

TEST(RocCurve, TieGroupsShareOnePoint) {
  const auto curve =
      RocCurve({1.0, 1.0, 1.0, 0.0}, {1, 1, 0, 0}, kHigher).ValueOrDie();
  // Points: (0,0) start, tie group at 1.0 -> (0.5, 1.0), then (1,1).
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[1].false_positive_rate, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].true_positive_rate, 1.0);
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
