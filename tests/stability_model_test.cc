#include "core/stability_model.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

// Hand-built dataset: two customers over four 2-month windows at product
// granularity semantics (each product its own segment so both granularities
// agree).
retail::Dataset MakeHandDataset() {
  retail::Dataset dataset;
  const retail::DepartmentId department =
      dataset.mutable_taxonomy().AddDepartment("all");
  const auto add_item = [&](const std::string& name) {
    const retail::ItemId item = dataset.mutable_items().GetOrAdd(name);
    const retail::SegmentId segment =
        dataset.mutable_taxonomy().AddSegment(name, department).ValueOrDie();
    EXPECT_TRUE(dataset.mutable_taxonomy().AssignItem(item, segment).ok());
    return item;
  };
  const retail::ItemId coffee = add_item("coffee");
  const retail::ItemId milk = add_item("milk");

  // Customer 1 (loyal): buys both products every window (8 months).
  for (int32_t month = 0; month < 8; ++month) {
    retail::Receipt receipt;
    receipt.customer = 1;
    receipt.day = retail::MonthToFirstDay(month) + 5;
    receipt.items = {coffee, milk};
    receipt.spend = 7.0;
    EXPECT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  }
  // Customer 2 (defecting): both products for 4 months, then coffee only,
  // then nothing in the final window.
  for (int32_t month = 0; month < 6; ++month) {
    retail::Receipt receipt;
    receipt.customer = 2;
    receipt.day = retail::MonthToFirstDay(month) + 5;
    receipt.items =
        month < 4 ? std::vector<retail::ItemId>{coffee, milk}
                  : std::vector<retail::ItemId>{coffee};
    receipt.spend = 5.0;
    EXPECT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  }
  dataset.SetLabel(1, {retail::Cohort::kLoyal, -1});
  dataset.SetLabel(2, {retail::Cohort::kDefecting, 4});
  dataset.Finalize();
  return dataset;
}

StabilityModelOptions DefaultOptions() {
  StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  return options;
}

TEST(StabilityModel, MakeValidatesOptions) {
  StabilityModelOptions bad_alpha = DefaultOptions();
  bad_alpha.significance.alpha = -1.0;
  EXPECT_FALSE(StabilityModel::Make(bad_alpha).ok());
  StabilityModelOptions bad_span = DefaultOptions();
  bad_span.window_span_months = 0;
  EXPECT_FALSE(StabilityModel::Make(bad_span).ok());
  EXPECT_TRUE(StabilityModel::Make(DefaultOptions()).ok());
}

TEST(StabilityModel, NumWindowsCoversDataset) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  // Last receipt day = 215 -> window 3 of span 60 -> 4 windows.
  EXPECT_EQ(model.NumWindowsFor(dataset), 4);
}

TEST(StabilityModel, NumWindowsOverride) {
  const retail::Dataset dataset = MakeHandDataset();
  StabilityModelOptions options = DefaultOptions();
  options.num_windows = 2;
  const auto model = StabilityModel::Make(options).ValueOrDie();
  EXPECT_EQ(model.NumWindowsFor(dataset), 2);
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  EXPECT_EQ(scores.num_windows(), 2);
}

TEST(StabilityModel, ScoreDatasetShapeAndValues) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  EXPECT_EQ(scores.num_rows(), 2u);
  EXPECT_EQ(scores.num_windows(), 4);

  // Loyal customer: stability 1 everywhere.
  const size_t loyal = scores.RowOf(1).ValueOrDie();
  for (int32_t window = 0; window < 4; ++window) {
    EXPECT_DOUBLE_EQ(scores.At(loyal, window), 1.0) << "window " << window;
  }
  // Defector: 1.0 through window 1, 0.5 at window 2 (milk missing, equal
  // significance), 2/3 at window 3 (coffee still present with S=2^(2*3-3)=8,
  // milk S=2^(2*2-3)=2; but window 3 is empty -> stability 0).
  const size_t defector = scores.RowOf(2).ValueOrDie();
  EXPECT_DOUBLE_EQ(scores.At(defector, 0), 1.0);
  EXPECT_DOUBLE_EQ(scores.At(defector, 1), 1.0);
  EXPECT_DOUBLE_EQ(scores.At(defector, 2), 0.5);
  EXPECT_DOUBLE_EQ(scores.At(defector, 3), 0.0);
}

TEST(StabilityModel, ScoreCustomerMatchesMatrix) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto series = model.ScoreCustomer(dataset, 2).ValueOrDie();
  const size_t row = scores.RowOf(2).ValueOrDie();
  ASSERT_EQ(series.size(), 4u);
  for (int32_t window = 0; window < 4; ++window) {
    EXPECT_DOUBLE_EQ(series.StabilityAt(static_cast<size_t>(window)),
                     scores.At(row, window));
  }
}

TEST(StabilityModel, ScoreCustomerUnknownFails) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  EXPECT_TRUE(model.ScoreCustomer(dataset, 99).status().IsNotFound());
  EXPECT_TRUE(model.AnalyzeCustomer(dataset, 99).status().IsNotFound());
}

TEST(StabilityModel, AnalyzeCustomerNamesLostProducts) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  const auto report = model.AnalyzeCustomer(dataset, 2).ValueOrDie();
  ASSERT_EQ(report.windows.size(), 4u);
  // Window 2: milk newly missing.
  const CustomerWindowReport& window2 = report.windows[2];
  ASSERT_FALSE(window2.missing.empty());
  EXPECT_EQ(window2.missing.front().name, "milk");
  EXPECT_TRUE(window2.missing.front().newly_missing);
  EXPECT_NEAR(window2.missing.front().significance_share, 0.5, 1e-12);
  EXPECT_EQ(window2.begin_month, 4);
  EXPECT_EQ(window2.end_month, 6);
  // The report renders without crashing and mentions the product.
  EXPECT_NE(report.ToString().find("milk"), std::string::npos);
}

TEST(StabilityModel, ProfileCustomerRanksSignificance) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  // Customer 2 at window 3: coffee bought in windows 0..2 (c=3, l=0,
  // S=2^3=8); milk bought in windows 0..1 (c=2, l=1, S=2^1=2).
  const auto profile = model.ProfileCustomer(dataset, 2, 3).ValueOrDie();
  EXPECT_EQ(profile.window_index, 3);
  ASSERT_EQ(profile.products.size(), 2u);
  EXPECT_EQ(profile.products[0].name, "coffee");
  EXPECT_EQ(profile.products[0].contain_count, 3);
  EXPECT_EQ(profile.products[0].miss_count, 0);
  EXPECT_DOUBLE_EQ(profile.products[0].significance, 8.0);
  EXPECT_FALSE(profile.products[0].present_in_window);  // window 3 is empty
  EXPECT_EQ(profile.products[1].name, "milk");
  EXPECT_EQ(profile.products[1].contain_count, 2);
  EXPECT_EQ(profile.products[1].miss_count, 1);
  EXPECT_DOUBLE_EQ(profile.products[1].significance, 2.0);
  EXPECT_DOUBLE_EQ(profile.total_significance, 10.0);
  EXPECT_NEAR(profile.products[0].significance_share, 0.8, 1e-12);
}

TEST(StabilityModel, ProfileDefaultsToFinalWindow) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  const auto profile = model.ProfileCustomer(dataset, 1).ValueOrDie();
  EXPECT_EQ(profile.window_index, 3);
  // Loyal customer: everything present.
  for (const SignificantProduct& product : profile.products) {
    EXPECT_TRUE(product.present_in_window);
  }
}

TEST(StabilityModel, ProfileValidatesWindowAndCustomer) {
  const retail::Dataset dataset = MakeHandDataset();
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  EXPECT_TRUE(model.ProfileCustomer(dataset, 99).status().IsNotFound());
  EXPECT_TRUE(model.ProfileCustomer(dataset, 1, 10).status().IsOutOfRange());
}

TEST(StabilityModel, ParallelScoringMatchesSerial) {
  const retail::Dataset dataset = MakeHandDataset();
  StabilityModelOptions parallel_options = DefaultOptions();
  parallel_options.num_threads = 4;
  const auto serial_scores = StabilityModel::Make(DefaultOptions())
                                 .ValueOrDie()
                                 .ScoreDataset(dataset)
                                 .ValueOrDie();
  const auto parallel_scores = StabilityModel::Make(parallel_options)
                                   .ValueOrDie()
                                   .ScoreDataset(dataset)
                                   .ValueOrDie();
  for (size_t row = 0; row < serial_scores.num_rows(); ++row) {
    for (int32_t window = 0; window < serial_scores.num_windows(); ++window) {
      EXPECT_DOUBLE_EQ(serial_scores.At(row, window),
                       parallel_scores.At(row, window));
    }
  }
}

TEST(StabilityModel, ProductAndSegmentGranularityAgreeWhenTaxonomyIsTrivial) {
  // Every product is its own segment here, so the two granularities are
  // observationally identical.
  const retail::Dataset dataset = MakeHandDataset();
  StabilityModelOptions product_options = DefaultOptions();
  product_options.granularity = retail::Granularity::kProduct;
  const auto segment_scores = StabilityModel::Make(DefaultOptions())
                                  .ValueOrDie()
                                  .ScoreDataset(dataset)
                                  .ValueOrDie();
  const auto product_scores = StabilityModel::Make(product_options)
                                  .ValueOrDie()
                                  .ScoreDataset(dataset)
                                  .ValueOrDie();
  for (size_t row = 0; row < segment_scores.num_rows(); ++row) {
    for (int32_t window = 0; window < segment_scores.num_windows();
         ++window) {
      EXPECT_DOUBLE_EQ(segment_scores.At(row, window),
                       product_scores.At(row, window));
    }
  }
}

TEST(StabilityModel, UnfinalizedDatasetFails) {
  retail::Dataset dataset;
  retail::Receipt receipt;
  receipt.customer = 1;
  receipt.day = 0;
  receipt.items = {0};
  ASSERT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  const auto model = StabilityModel::Make(DefaultOptions()).ValueOrDie();
  EXPECT_FALSE(model.ScoreDataset(dataset).ok());
}

}  // namespace
}  // namespace core
}  // namespace churnlab
