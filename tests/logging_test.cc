#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace churnlab {
namespace {

// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = Logger::GetLevel(); }
  void TearDown() override { Logger::SetLevel(saved_level_); }
  LogLevel saved_level_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  Logger::SetLevel(LogLevel::kWarning);
  EXPECT_FALSE(Logger::IsEnabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::IsEnabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::IsEnabled(LogLevel::kWarning));
  EXPECT_TRUE(Logger::IsEnabled(LogLevel::kError));
}

TEST_F(LoggingTest, SetLevelWidensAndNarrows) {
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_TRUE(Logger::IsEnabled(LogLevel::kDebug));
  Logger::SetLevel(LogLevel::kOff);
  EXPECT_FALSE(Logger::IsEnabled(LogLevel::kError));
}

TEST_F(LoggingTest, GetLevelRoundTrips) {
  Logger::SetLevel(LogLevel::kInfo);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, MacroCompilesAndDoesNotCrash) {
  Logger::SetLevel(LogLevel::kOff);
  // Streams through disabled and enabled paths.
  CHURNLAB_LOG(Error) << "suppressed " << 42;
  Logger::SetLevel(LogLevel::kError);
  CHURNLAB_LOG(Error) << "emitted to stderr in tests " << 3.14;
  SUCCEED();
}

TEST_F(LoggingTest, DisabledMacroDoesNotEvaluateStreamedExpressions) {
  Logger::SetLevel(LogLevel::kOff);
  int evaluations = 0;
  const auto counted = [&evaluations] {
    ++evaluations;
    return 1;
  };
  CHURNLAB_LOG(Debug) << counted();
  EXPECT_EQ(evaluations, 0);
  Logger::SetLevel(LogLevel::kDebug);
  CHURNLAB_LOG(Debug) << counted();
  EXPECT_EQ(evaluations, 1);
}

// Regression: the macro used to expand to a bare `if (...) LogMessage(...)`,
// so an unbraced `if (x) CHURNLAB_LOG(...) ...; else ...;` silently attached
// the else to the macro's hidden if. The single-expression (ternary +
// voidify) form must keep the else bound to the *outer* if.
TEST_F(LoggingTest, MacroIsDanglingElseSafe) {
  Logger::SetLevel(LogLevel::kOff);
  int else_count = 0;
  const bool outer = false;
  if (outer)
    CHURNLAB_LOG(Error) << "then-branch";
  else
    ++else_count;
  EXPECT_EQ(else_count, 1) << "else bound to the macro's internal branch";

  // And the inverse: a true condition must not run the else.
  const bool taken = true;
  if (taken)
    CHURNLAB_LOG(Error) << "then-branch";
  else
    ++else_count;
  EXPECT_EQ(else_count, 1);
}

TEST(LogLevelToString, Names) {
  EXPECT_EQ(LogLevelToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelToString(LogLevel::kWarning), "WARN");
  EXPECT_EQ(LogLevelToString(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelToString(LogLevel::kOff), "OFF");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  // Burn a little CPU; wall time must be non-negative and consistent
  // across units.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double seconds = stopwatch.ElapsedSeconds();
  const double millis = stopwatch.ElapsedMillis();
  EXPECT_GE(seconds, 0.0);
  EXPECT_GE(millis, seconds * 1e3 * 0.5);  // same clock, later read
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double before_reset = stopwatch.ElapsedSeconds();
  stopwatch.Reset();
  EXPECT_LE(stopwatch.ElapsedSeconds(), before_reset + 1.0);
}

TEST(Stopwatch, LapSegmentsSumToTotal) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double lap1 = stopwatch.LapSeconds();
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double lap2 = stopwatch.LapSeconds();
  const double total = stopwatch.ElapsedSeconds();
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  // Laps partition the run, so their sum cannot exceed a later total read.
  EXPECT_LE(lap1 + lap2, total);
}

TEST(Stopwatch, LapDoesNotDisturbTotal) {
  Stopwatch stopwatch;
  const double before = stopwatch.ElapsedSeconds();
  (void)stopwatch.LapSeconds();
  (void)stopwatch.LapSeconds();
  EXPECT_GE(stopwatch.ElapsedSeconds(), before);
}

TEST(Stopwatch, ResetAlsoRestartsLap) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  stopwatch.Reset();
  // A lap read right after Reset covers only the post-Reset segment.
  EXPECT_LE(stopwatch.LapSeconds(), stopwatch.ElapsedSeconds() + 1e-3);
}

}  // namespace
}  // namespace churnlab
