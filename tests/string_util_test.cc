#include "common/string_util.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, SingleFieldWhenNoDelimiter) {
  const auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingDelimiterYieldsTrailingEmpty) {
  const auto parts = Split("x;", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"alpha", "beta", "gamma"};
  const std::string joined = Join(parts, "--");
  EXPECT_EQ(joined, "alpha--beta--gamma");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StripAsciiWhitespace, AllSides) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace("\t\nabc\r "), "abc");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("no-ws"), "no-ws");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("churnlab", "churn"));
  EXPECT_FALSE(StartsWith("churn", "churnlab"));
  EXPECT_TRUE(EndsWith("dataset.clb", ".clb"));
  EXPECT_FALSE(EndsWith("clb", "dataset.clb"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(AsciiToLower, MixedCase) {
  EXPECT_EQ(AsciiToLower("ChurnLAB-42"), "churnlab-42");
}

TEST(ParseInt64, ValidInputs) {
  EXPECT_EQ(ParseInt64("0").ValueOrDie(), 0);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64(" 42 ").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("9223372036854775807").ValueOrDie(),
            9223372036854775807LL);
}

TEST(ParseInt64, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());  // overflow
}

TEST(ParseUint64, ValidAndInvalid) {
  EXPECT_EQ(ParseUint64("18446744073709551615").ValueOrDie(),
            18446744073709551615ULL);
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("").ok());
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").ValueOrDie(), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble(" 0 ").ValueOrDie(), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5stuff").ok());
}

TEST(FormatDouble, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatWithThousandsSeparators, GroupsDigits) {
  EXPECT_EQ(FormatWithThousandsSeparators(0), "0");
  EXPECT_EQ(FormatWithThousandsSeparators(999), "999");
  EXPECT_EQ(FormatWithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(FormatWithThousandsSeparators(6000000), "6,000,000");
  EXPECT_EQ(FormatWithThousandsSeparators(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithThousandsSeparators(12), "12");
  EXPECT_EQ(FormatWithThousandsSeparators(123456), "123,456");
}

}  // namespace
}  // namespace churnlab
