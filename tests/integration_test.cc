// End-to-end pipeline tests: simulate -> serialize -> reload -> score with
// both models -> evaluate. These are the system-level guarantees a
// downstream user relies on; each test exercises several modules together.

#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/online_scorer.h"
#include "core/stability_model.h"
#include "core/symbol_mapper.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/grid_search.h"
#include "retail/dataset.h"
#include "rfm/rfm_model.h"

namespace churnlab {
namespace {

datagen::PaperScenarioConfig SmallScenario() {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 100;
  config.population.num_defecting = 100;
  config.seed = 77;
  return config;
}

TEST(Integration, ScoresSurviveBinaryRoundTrip) {
  const retail::Dataset original =
      datagen::MakePaperDataset(SmallScenario()).ValueOrDie();
  const std::string path = testing::TempDir() + "/churnlab_integration.clb";
  ASSERT_TRUE(original.SaveBinary(path).ok());
  const retail::Dataset reloaded =
      retail::Dataset::LoadBinary(path).ValueOrDie();
  std::remove(path.c_str());

  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const auto scores_a = model.ScoreDataset(original).ValueOrDie();
  const auto scores_b = model.ScoreDataset(reloaded).ValueOrDie();
  ASSERT_EQ(scores_a.num_rows(), scores_b.num_rows());
  ASSERT_EQ(scores_a.num_windows(), scores_b.num_windows());
  for (size_t row = 0; row < scores_a.num_rows(); ++row) {
    for (int32_t window = 0; window < scores_a.num_windows(); ++window) {
      ASSERT_DOUBLE_EQ(scores_a.At(row, window), scores_b.At(row, window))
          << "row " << row << " window " << window;
    }
  }
}

TEST(Integration, ScoresSurviveCsvRoundTrip) {
  const retail::Dataset original =
      datagen::MakePaperDataset(SmallScenario()).ValueOrDie();
  const std::string prefix = testing::TempDir() + "/churnlab_integration_csv";
  ASSERT_TRUE(original.SaveCsv(prefix).ok());
  const retail::Dataset reloaded =
      retail::Dataset::LoadCsv(prefix).ValueOrDie();
  std::remove((prefix + ".receipts.csv").c_str());
  std::remove((prefix + ".taxonomy.csv").c_str());
  std::remove((prefix + ".labels.csv").c_str());

  // CSV re-interns items in taxonomy-then-receipt order, so raw ids may
  // differ — but segment-level stability must be identical. Spend is
  // rounded to cents in CSV, which RFM sees; stability does not use spend.
  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const auto scores_a = model.ScoreDataset(original).ValueOrDie();
  const auto scores_b = model.ScoreDataset(reloaded).ValueOrDie();
  for (size_t row = 0; row < scores_a.num_rows(); ++row) {
    for (int32_t window = 0; window < scores_a.num_windows(); ++window) {
      ASSERT_NEAR(scores_a.At(row, window), scores_b.At(row, window), 1e-12);
    }
  }
}

TEST(Integration, OnlineScorerMatchesModelOnSimulatedCustomers) {
  const retail::Dataset dataset =
      datagen::MakePaperDataset(SmallScenario()).ValueOrDie();
  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const auto batch_scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto mapper = core::SymbolMapper::Make(retail::Granularity::kSegment,
                                               &dataset.taxonomy())
                          .ValueOrDie();
  const retail::Day horizon =
      static_cast<retail::Day>(batch_scores.num_windows()) * 60;

  // Stream the first 10 customers and compare every window.
  const auto& customers = dataset.store().Customers();
  for (size_t i = 0; i < 10 && i < customers.size(); ++i) {
    core::OnlineStabilityScorer::Options online_options;
    online_options.significance = options.significance;
    online_options.window_span_days = 60;
    auto scorer =
        core::OnlineStabilityScorer::Make(online_options).ValueOrDie();
    std::vector<core::StabilityPoint> streamed;
    for (const retail::Receipt& receipt :
         dataset.store().History(customers[i])) {
      std::vector<core::Symbol> symbols;
      for (const retail::ItemId item : receipt.items) {
        symbols.push_back(mapper.Map(item));
      }
      std::sort(symbols.begin(), symbols.end());
      const auto emitted = scorer.Observe(receipt.day, symbols).ValueOrDie();
      streamed.insert(streamed.end(), emitted.begin(), emitted.end());
    }
    const auto tail = scorer.AdvanceTo(horizon).ValueOrDie();
    streamed.insert(streamed.end(), tail.begin(), tail.end());

    const size_t row = batch_scores.RowOf(customers[i]).ValueOrDie();
    ASSERT_EQ(streamed.size(),
              static_cast<size_t>(batch_scores.num_windows()));
    for (size_t k = 0; k < streamed.size(); ++k) {
      ASSERT_DOUBLE_EQ(streamed[k].stability,
                       batch_scores.At(row, static_cast<int32_t>(k)))
          << "customer " << customers[i] << " window " << k;
    }
  }
}

TEST(Integration, BothModelsBeatChanceAfterOnsetOnFreshScenario) {
  datagen::PaperScenarioConfig scenario = SmallScenario();
  scenario.seed = 1234;  // a seed no other test uses
  eval::Figure1Options options;
  options.scenario = scenario;
  const eval::Figure1Result result =
      eval::ExperimentRunner::Make(options).ValueOrDie().Run().ValueOrDie();
  double stability_at_24 = 0.0;
  double rfm_at_24 = 0.0;
  for (const eval::Figure1Row& row : result.rows) {
    if (row.report_month == 24) {
      stability_at_24 = row.stability_auroc;
      rfm_at_24 = row.rfm_auroc;
    }
  }
  EXPECT_GT(stability_at_24, 0.8);
  EXPECT_GT(rfm_at_24, 0.8);
}

TEST(Integration, GridSearchPrefersInformativeWindows) {
  const retail::Dataset dataset =
      datagen::MakePaperDataset(SmallScenario()).ValueOrDie();
  eval::GridSearchOptions options;
  options.window_spans_months = {2};
  options.alphas = {1.0, 2.0};
  options.folds = 4;
  options.onset_month = 18;
  const eval::GridSearchResult result =
      eval::StabilityGridSearch::Make(options).ValueOrDie().Run(dataset).ValueOrDie();
  // alpha = 1 weighs every seen product equally forever; alpha = 2 adapts.
  // Both should beat chance post-onset.
  for (const eval::GridSearchCell& cell : result.cells) {
    EXPECT_GT(cell.mean_auroc, 0.6)
        << "alpha " << cell.alpha;
  }
}

TEST(Integration, EwmaVariantDetectsChurnToo) {
  const retail::Dataset dataset =
      datagen::MakePaperDataset(SmallScenario()).ValueOrDie();
  core::StabilityModelOptions options;
  options.significance.kind = core::SignificanceKind::kEwma;
  options.significance.ewma_lambda = 0.7;
  options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto series =
      eval::AurocPerWindow(dataset, scores,
                           eval::ScoreOrientation::kLowerIsPositive, 2)
          .ValueOrDie();
  double at_24 = 0.0;
  for (const eval::WindowAuroc& point : series) {
    if (point.report_month == 24) at_24 = point.auroc;
  }
  EXPECT_GT(at_24, 0.8);
}

}  // namespace
}  // namespace churnlab
