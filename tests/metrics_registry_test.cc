#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace churnlab {
namespace obs {
namespace {

// Every test uses its own registry instance so state never leaks between
// tests (or into Global(), which the instrumented library code feeds).

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram histogram(HistogramOptions::ExponentialLatency());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.5), 0.0);
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram histogram(HistogramOptions{{1.0, 10.0, 100.0}});
  histogram.Record(0.5);
  histogram.Record(5.0);
  histogram.Record(50.0);
  histogram.Record(500.0);  // overflow bucket
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 555.5);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 500.0);
  ASSERT_EQ(snapshot.buckets.size(), snapshot.bounds.size() + 1);
  for (const uint64_t bucket : snapshot.buckets) EXPECT_EQ(bucket, 1u);
}

TEST(Histogram, PercentilesAreMonotoneAndClamped) {
  Histogram histogram(HistogramOptions::ExponentialLatency());
  // 100 samples spread over two decades.
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  const HistogramSnapshot snapshot = histogram.Snapshot();
  const double p50 = snapshot.Percentile(0.50);
  const double p90 = snapshot.Percentile(0.90);
  const double p99 = snapshot.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Interpolation stays inside the observed range and near the true
  // quantiles (bucket resolution is 1-2-5, so allow a full bucket of slack).
  EXPECT_GE(p50, snapshot.min);
  EXPECT_LE(p99, snapshot.max);
  EXPECT_NEAR(p50, 50.0, 30.0);
  EXPECT_GE(p99, 80.0);
}

TEST(Histogram, SingleSamplePercentileIsThatSample) {
  Histogram histogram(HistogramOptions::ExponentialLatency());
  histogram.Record(7.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // Clamping to [min, max] pins every quantile of a single sample.
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(1.0), 7.0);
}

TEST(MetricsRegistry, LookupReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  Gauge* gauge = registry.GetGauge("test.gauge");
  Histogram* histogram = registry.GetHistogram("test.histogram");
  EXPECT_EQ(registry.GetCounter("test.counter"), counter);
  EXPECT_EQ(registry.GetGauge("test.gauge"), gauge);
  EXPECT_EQ(registry.GetHistogram("test.histogram"), histogram);
  // Same name in different metric families stays distinct.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("test.shared")),
            static_cast<void*>(registry.GetGauge("test.shared")));
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(2);
  registry.GetCounter("a.counter")->Increment(1);
  registry.GetGauge("a.gauge")->Set(3.5);
  registry.GetHistogram("a.histogram")->Record(12.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.counter");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.counter");
  EXPECT_EQ(snapshot.counters[1].value, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 3.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].histogram.count, 1u);
}

TEST(MetricsRegistry, ResetZeroesInPlaceKeepingPointersValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("r.counter");
  Gauge* gauge = registry.GetGauge("r.gauge");
  Histogram* histogram = registry.GetHistogram("r.histogram");
  counter->Increment(10);
  gauge->Set(4.0);
  histogram->Record(2.0);

  registry.Reset();

  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->Snapshot().count, 0u);
  // The old pointers must still feed the same registered metric.
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("r.counter")->Value(), 1u);
}

TEST(MetricsRegistry, ConcurrentRecordingIsLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mt.counter");
  Histogram* histogram = registry.GetHistogram("mt.histogram");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, counter, histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(1.0);
        // Lookups race with recording; both must stay safe.
        registry.GetCounter("mt.counter");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.sum, static_cast<double>(kThreads) * kPerThread);
}

TEST(DetailedTiming, GatesScopedLatency) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("gate.latency_us");
  const bool saved = DetailedTimingEnabled();

  SetDetailedTiming(false);
  { ScopedLatency latency(histogram); }
  EXPECT_EQ(histogram->Snapshot().count, 0u);

  SetDetailedTiming(true);
  { ScopedLatency latency(histogram); }
  EXPECT_EQ(histogram->Snapshot().count, 1u);
  EXPECT_GE(histogram->Snapshot().min, 0.0);

  SetDetailedTiming(saved);
}

TEST(MonotonicClock, NeverGoesBackwards) {
  const uint64_t first = MonotonicNanos();
  const uint64_t second = MonotonicNanos();
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
