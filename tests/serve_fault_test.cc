// Fault-injection tests for the serving layer: every armed failpoint site
// is exercised, transient faults are invisible in the output (byte-identical
// to a fault-free run), persistent faults degrade gracefully (quarantine,
// shard poisoning) with reports that are deterministic across thread counts,
// and snapshot corruption is always detected.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "obs/fault_obs.h"
#include "obs/metrics.h"
#include "retail/dataset.h"
#include "serve/fleet.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

class ServeFaultTest : public testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

FleetOptions FaultFleetOptions(size_t num_threads = 1) {
  FleetOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 8;
  options.num_threads = num_threads;
  options.granularity = retail::Granularity::kProduct;
  options.policy.beta = 0.5;
  options.policy.warmup_windows = 1;
  options.policy.drop_threshold = 2.0;
  return options;
}

Receipt MakeReceipt(CustomerId customer, Day day,
                    std::vector<retail::ItemId> items) {
  Receipt receipt;
  receipt.customer = customer;
  receipt.day = day;
  receipt.spend = 1.0;
  receipt.items = std::move(items);
  return receipt;
}

/// A day-sorted stream over enough customers to populate several shards,
/// with a basket collapse so the run raises alerts.
std::vector<Receipt> FaultStream() {
  std::vector<Receipt> stream;
  for (Day day = 0; day < 240; day += 6) {
    for (CustomerId customer = 1; customer <= 24; ++customer) {
      if (day < 120 || customer % 3 == 0) {
        stream.push_back(MakeReceipt(customer, day, {customer, 100, 101}));
      } else {
        stream.push_back(MakeReceipt(customer, day, {900}));
      }
    }
  }
  return stream;
}

std::string SnapshotOf(const ScoringFleet& fleet) {
  BinaryWriter writer;
  EXPECT_TRUE(fleet.SaveSnapshot(&writer).ok());
  return writer.buffer();
}

std::string Describe(const BatchReport& report) {
  std::string out;
  char line[256];
  for (const FleetAlert& alert : report.alerts) {
    std::snprintf(line, sizeof(line), "alert %llu@%zu w%d k%d\n",
                  static_cast<unsigned long long>(alert.customer),
                  alert.batch_index, alert.alert.window_index,
                  static_cast<int>(alert.alert.kind));
    out += line;
  }
  for (const RejectedReceipt& rejected : report.rejected) {
    std::snprintf(line, sizeof(line), "rejected %llu@%zu d%d: %s\n",
                  static_cast<unsigned long long>(rejected.customer),
                  rejected.batch_index, rejected.day,
                  rejected.reason.ToString().c_str());
    out += line;
  }
  for (const PoisonedShard& poisoned : report.poisoned) {
    std::snprintf(line, sizeof(line), "poisoned %zu: %s\n", poisoned.shard,
                  poisoned.reason.ToString().c_str());
    out += line;
  }
  return out;
}

/// Replays FaultStream in 30-day batches; returns the concatenated report
/// descriptions and the final snapshot.
struct ReplayOutput {
  std::string reports;
  std::string snapshot;
};

ReplayOutput Replay(FleetOptions options) {
  ReplayOutput output;
  auto fleet = ScoringFleet::Make(options, nullptr).ValueOrDie();
  const std::vector<Receipt> stream = FaultStream();
  size_t begin = 0;
  while (begin < stream.size()) {
    const Day batch_end = stream[begin].day + 30;
    size_t end = begin;
    while (end < stream.size() && stream[end].day < batch_end) ++end;
    auto report =
        fleet
            .IngestBatch(std::span<const Receipt>(stream.data() + begin,
                                                  end - begin))
            .ValueOrDie();
    output.reports += Describe(report);
    begin = end;
  }
  output.reports += Describe(fleet.FinishAll().ValueOrDie());
  output.snapshot = SnapshotOf(fleet);
  return output;
}

// --- transient faults are invisible ----------------------------------------

TEST_F(ServeFaultTest, TransientReceiptFaultOutputIsByteIdentical) {
  const ReplayOutput clean = Replay(FaultFleetOptions());

  // A 1-in-50 transient error on the per-receipt site, with enough retry
  // budget to ride out every injection: the retried shard tasks resume
  // after the last fully-ingested receipt, so nothing is lost, duplicated,
  // or reordered.
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    ASSERT_TRUE(FailpointRegistry::Global()
                    .ArmFromSpec("serve.ingest.receipt=error@every(50)")
                    .ok());
    FleetOptions faulty = FaultFleetOptions(threads);
    faulty.shard_retry.max_retries = 1000;
    faulty.shard_retry.initial_backoff_ms = 0.0;
    const ReplayOutput with_faults = Replay(faulty);
    FailpointRegistry::Global().DisarmAll();

    EXPECT_EQ(with_faults.reports, clean.reports) << threads << " threads";
    EXPECT_EQ(with_faults.snapshot, clean.snapshot) << threads << " threads";
  }
}

TEST_F(ServeFaultTest, TransientShardTaskThrowIsByteIdentical) {
  const ReplayOutput clean = Replay(FaultFleetOptions());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("serve.shard.task=throw@nth(1)")
                  .ok());
  FleetOptions faulty = FaultFleetOptions();
  faulty.shard_retry.initial_backoff_ms = 0.0;
  const ReplayOutput with_faults = Replay(faulty);
  EXPECT_EQ(FailpointRegistry::Global().Get("serve.shard.task")->fires(), 1u);
  EXPECT_EQ(with_faults.reports, clean.reports);
  EXPECT_EQ(with_faults.snapshot, clean.snapshot);
}

// --- persistent faults degrade gracefully ----------------------------------

TEST_F(ServeFaultTest, BatchFailpointFailsTheCall) {
  auto fleet =
      ScoringFleet::Make(FaultFleetOptions(), nullptr).ValueOrDie();
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("serve.ingest.batch=error")
                  .ok());
  std::vector<Receipt> batch = {MakeReceipt(1, 0, {1})};
  const auto report = fleet.IngestBatch(batch);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
}

TEST_F(ServeFaultTest, PersistentFaultPoisonsOneShardDeterministically) {
  // A keyed, always-firing fault pinned to customer 5: its shard exhausts
  // its retries and is poisoned; every other shard keeps serving. The
  // quarantine and poison reports must be identical for 1, 4, and 16
  // threads.
  std::vector<std::string> outputs;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{16}}) {
    ASSERT_TRUE(FailpointRegistry::Global()
                    .ArmFromSpec("serve.ingest.receipt=error@key(5)")
                    .ok());
    FleetOptions options = FaultFleetOptions(threads);
    options.shard_retry.max_retries = 2;
    options.shard_retry.initial_backoff_ms = 0.0;
    const ReplayOutput output = Replay(options);
    FailpointRegistry::Global().DisarmAll();
    outputs.push_back(output.reports + "---\n" + output.snapshot);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
  EXPECT_NE(outputs[0].find("poisoned"), std::string::npos);
  EXPECT_NE(outputs[0].find("rejected"), std::string::npos);
}

TEST_F(ServeFaultTest, PoisonedShardStaysOutOfServiceAndReportsHealth) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("serve.ingest.receipt=error@key(5)")
                  .ok());
  FleetOptions options = FaultFleetOptions();
  options.shard_retry.max_retries = 1;
  options.shard_retry.initial_backoff_ms = 0.0;
  auto fleet = ScoringFleet::Make(options, nullptr).ValueOrDie();

  std::vector<Receipt> batch = {MakeReceipt(5, 0, {1, 2})};
  auto report = fleet.IngestBatch(batch).ValueOrDie();
  ASSERT_EQ(report.poisoned.size(), 1u);
  const size_t shard = report.poisoned[0].shard;
  EXPECT_FALSE(fleet.ShardHealth(shard).ok());
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0].customer, 5u);

  // Disarm: the fault is gone, but the shard stays poisoned — receipts
  // routed to it are quarantined without touching its state.
  FailpointRegistry::Global().DisarmAll();
  std::vector<Receipt> later = {MakeReceipt(5, 10, {1, 2})};
  report = fleet.IngestBatch(later).ValueOrDie();
  EXPECT_EQ(report.receipts_ingested, 0u);
  ASSERT_EQ(report.poisoned.size(), 1u);
  EXPECT_EQ(report.poisoned[0].shard, shard);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_NE(report.rejected[0].reason.ToString().find("shard poisoned"),
            std::string::npos);

  // FinishAll skips the poisoned shard but still reports it.
  report = fleet.FinishAll().ValueOrDie();
  ASSERT_EQ(report.poisoned.size(), 1u);
  EXPECT_EQ(report.poisoned[0].shard, shard);
}

TEST_F(ServeFaultTest, ShardRetriesAndPoisonsAreCountedInMetrics) {
  obs::Counter* const retries = obs::MetricsRegistry::Global().GetCounter(
      "churnlab.serve.shard_retries");
  obs::Counter* const poisoned = obs::MetricsRegistry::Global().GetCounter(
      "churnlab.serve.poisoned_shards");
  obs::Counter* const rejected = obs::MetricsRegistry::Global().GetCounter(
      "churnlab.serve.rejected_receipts");
  obs::Counter* const triggered = obs::MetricsRegistry::Global().GetCounter(
      "churnlab.failpoint.triggered");
  const uint64_t retries_before = retries->Value();
  const uint64_t poisoned_before = poisoned->Value();
  const uint64_t rejected_before = rejected->Value();
  const uint64_t triggered_before = triggered->Value();

  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("serve.ingest.receipt=error@key(5)")
                  .ok());
  FleetOptions options = FaultFleetOptions();
  options.shard_retry.max_retries = 2;
  options.shard_retry.initial_backoff_ms = 0.0;
  auto fleet = ScoringFleet::Make(options, nullptr).ValueOrDie();
  std::vector<Receipt> batch = {MakeReceipt(5, 0, {1, 2})};
  ASSERT_TRUE(fleet.IngestBatch(batch).ok());

  EXPECT_EQ(retries->Value() - retries_before, 2u);
  EXPECT_EQ(poisoned->Value() - poisoned_before, 1u);
  EXPECT_EQ(rejected->Value() - rejected_before, 1u);
  // 3 attempts, each hitting the armed site once.
  EXPECT_EQ(triggered->Value() - triggered_before, 3u);
}

// --- snapshot faults --------------------------------------------------------

ScoringFleet FedFleet() {
  auto fleet =
      ScoringFleet::Make(FaultFleetOptions(), nullptr).ValueOrDie();
  std::vector<Receipt> batch;
  for (CustomerId customer = 1; customer <= 8; ++customer) {
    for (Day day = 0; day < 90; day += 10) {
      batch.push_back(MakeReceipt(customer, day, {customer, 100}));
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const Receipt& a, const Receipt& b) { return a.day < b.day; });
  EXPECT_TRUE(fleet.IngestBatch(batch).ok());
  return fleet;
}

TEST_F(ServeFaultTest, WriteFrameCorruptionIsCaughtByRestore) {
  const ScoringFleet fleet = FedFleet();
  ASSERT_TRUE(
      FailpointRegistry::Global()
          .ArmFromSpec("serve.snapshot.write_frame=corrupt-bytes@key(0)")
          .ok());
  const std::string snapshot = SnapshotOf(fleet);
  FailpointRegistry::Global().DisarmAll();
  // The frame CRC was computed from the pristine bytes, so the torn write
  // cannot slip through.
  BinaryReader reader(snapshot);
  const auto restored = ScoringFleet::Restore(&reader, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsIOError());
}

TEST_F(ServeFaultTest, ReadFrameCorruptionIsCaughtByRestore) {
  const std::string snapshot = SnapshotOf(FedFleet());
  ASSERT_TRUE(
      FailpointRegistry::Global()
          .ArmFromSpec("serve.snapshot.read_frame=corrupt-bytes@key(0)")
          .ok());
  BinaryReader reader(snapshot);
  const auto restored = ScoringFleet::Restore(&reader, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsIOError());

  // Disarmed, the same bytes restore cleanly.
  FailpointRegistry::Global().DisarmAll();
  BinaryReader clean(snapshot);
  EXPECT_TRUE(ScoringFleet::Restore(&clean, nullptr).ok());
}

TEST_F(ServeFaultTest, BinaryIoSaveFaultIsCaughtByGenerationCrc) {
  // The generation format CRCs the whole payload, so a single bit flipped
  // anywhere by the file-save failpoint — payload, frame header, or magic —
  // must surface as a clean error, never a silently different fleet.
  const std::string path =
      testing::TempDir() + "/churnlab_fault_snapshot.bin";
  std::remove(path.c_str());
  const ScoringFleet fleet = FedFleet();
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("common.binary_io.save=corrupt-bytes")
                  .ok());
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  FailpointRegistry::Global().DisarmAll();
  const auto restored = ScoringFleet::RestoreFromFile(path, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsIOError());

  // The error action fails the write itself; the retry loop re-fires it
  // each attempt, so the save ultimately reports the injected error.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("common.binary_io.save=error")
                  .ok());
  EXPECT_TRUE(fleet.SaveSnapshotToFile(path).IsInternal());
  std::remove(path.c_str());
}

TEST_F(ServeFaultTest, BinaryIoOpenFaultIsCaughtOnRestore) {
  const std::string path =
      testing::TempDir() + "/churnlab_fault_open.bin";
  std::remove(path.c_str());
  const ScoringFleet fleet = FedFleet();
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("common.binary_io.open=corrupt-bytes")
                  .ok());
  const auto restored = ScoringFleet::RestoreFromFile(path, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsIOError());
  FailpointRegistry::Global().DisarmAll();
  auto clean = ScoringFleet::RestoreFromFile(path, nullptr).ValueOrDie();
  EXPECT_EQ(SnapshotOf(clean), SnapshotOf(fleet));
  std::remove(path.c_str());
}

TEST_F(ServeFaultTest, GenerationFileFallsBackToNewestValidFrame) {
  obs::Counter* const fallbacks = obs::MetricsRegistry::Global().GetCounter(
      "churnlab.serve.snapshot_fallbacks");
  const std::string path =
      testing::TempDir() + "/churnlab_fault_generations.bin";
  std::remove(path.c_str());

  ScoringFleet fleet = FedFleet();
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  const std::string generation1 = SnapshotOf(fleet);

  std::vector<Receipt> more;
  for (CustomerId customer = 1; customer <= 8; ++customer) {
    more.push_back(MakeReceipt(customer, 200, {customer}));
  }
  ASSERT_TRUE(fleet.IngestBatch(more).ok());
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  const std::string generation2 = SnapshotOf(fleet);
  ASSERT_NE(generation1, generation2);

  // Intact file: the newest generation wins, without a fallback.
  const uint64_t fallbacks_before = fallbacks->Value();
  {
    auto restored = ScoringFleet::RestoreFromFile(path, nullptr).ValueOrDie();
    EXPECT_EQ(SnapshotOf(restored), generation2);
    EXPECT_EQ(fallbacks->Value(), fallbacks_before);
  }

  // Torn tail (a crashed append): the file ends mid-frame; restore falls
  // back to the newest complete generation and counts the fallback.
  {
    BinaryWriter torn;
    torn.WriteBytes("CHLFGENS", 8);
    torn.WriteVarint(1000000);  // declares a payload that never arrives
    ASSERT_TRUE(torn.AppendToFile(path).ok());
    auto restored = ScoringFleet::RestoreFromFile(path, nullptr).ValueOrDie();
    EXPECT_EQ(SnapshotOf(restored), generation2);
    EXPECT_EQ(fallbacks->Value(), fallbacks_before + 1);
  }
  std::remove(path.c_str());
}

TEST_F(ServeFaultTest, GenerationFileSkipsCorruptNewestGeneration) {
  const std::string path =
      testing::TempDir() + "/churnlab_fault_crcfail.bin";
  std::remove(path.c_str());
  ScoringFleet fleet = FedFleet();
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  const std::string generation1 = SnapshotOf(fleet);
  std::vector<Receipt> more = {MakeReceipt(1, 200, {1})};
  ASSERT_TRUE(fleet.IngestBatch(more).ok());

  // The newest generation's payload is corrupted as it is read back: its
  // CRC fails, and restore falls back to the older valid generation.
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  // key(1) + limit(1): exactly one corruption, at generation index 1 in the
  // scan — never at shard index 1 inside the inner Restore.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("serve.snapshot.read_frame="
                               "corrupt-bytes@key(1)@limit(1)")
                  .ok());
  auto restored = ScoringFleet::RestoreFromFile(path, nullptr).ValueOrDie();
  FailpointRegistry::Global().DisarmAll();
  EXPECT_EQ(SnapshotOf(restored), generation1);

  // A generation file with no valid generation at all is a clean error.
  const std::string empty_path =
      testing::TempDir() + "/churnlab_fault_norestorable.bin";
  BinaryWriter garbage;
  garbage.WriteBytes("CHLFGENS", 8);
  garbage.WriteVarint(1000000);
  ASSERT_TRUE(garbage.SaveToFile(empty_path).ok());
  const auto failed = ScoringFleet::RestoreFromFile(empty_path, nullptr);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError());
  std::remove(empty_path.c_str());
  std::remove(path.c_str());
}

// --- retail loader sites ----------------------------------------------------

retail::Dataset SmallDataset() {
  retail::Dataset dataset;
  const retail::ItemId milk = dataset.mutable_items().GetOrAdd("milk");
  const retail::ItemId bread = dataset.mutable_items().GetOrAdd("bread");
  Receipt r1 = MakeReceipt(10, 3, {milk, bread});
  r1.spend = 12.5;
  EXPECT_TRUE(dataset.mutable_store().Append(std::move(r1)).ok());
  Receipt r2 = MakeReceipt(20, 5, {bread});
  r2.spend = 4.0;
  EXPECT_TRUE(dataset.mutable_store().Append(std::move(r2)).ok());
  dataset.SetLabel(10, {retail::Cohort::kLoyal, -1});
  dataset.SetLabel(20, {retail::Cohort::kDefecting, 18});
  dataset.Finalize();
  return dataset;
}

TEST_F(ServeFaultTest, RetailBinaryLoaderFailpointInjects) {
  const std::string path = testing::TempDir() + "/churnlab_fault_data.clb";
  ASSERT_TRUE(SmallDataset().SaveBinary(path).ok());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("retail.load_binary=error")
                  .ok());
  const auto loaded = retail::Dataset::LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInternal());
  FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(retail::Dataset::LoadBinary(path).ok());
  std::remove(path.c_str());
}

TEST_F(ServeFaultTest, RetailCsvLoaderFailpointsInject) {
  const std::string prefix = testing::TempDir() + "/churnlab_fault_csv";
  ASSERT_TRUE(SmallDataset().SaveCsv(prefix).ok());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("retail.load_csv=error")
                  .ok());
  EXPECT_TRUE(retail::Dataset::LoadCsv(prefix).status().IsInternal());
  FailpointRegistry::Global().DisarmAll();

  // Keyed per-receipt injection: only customer 20's rows trip it.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("retail.load_csv.receipt=error@key(20)")
                  .ok());
  EXPECT_TRUE(retail::Dataset::LoadCsv(prefix).status().IsInternal());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("retail.load_csv.receipt=error@key(9999)")
                  .ok());
  EXPECT_TRUE(retail::Dataset::LoadCsv(prefix).ok());
}

// --- thread-pool exception accounting ---------------------------------------

TEST_F(ServeFaultTest, ThreadPoolCountsDroppedExceptions) {
  obs::InstallFaultTelemetry();
  obs::Counter* const dropped_metric =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.threadpool.dropped_exceptions");
  const uint64_t metric_before = dropped_metric->Value();

  ThreadPool pool(4);
  constexpr int kThrowers = 6;
  for (int i = 0; i < kThrowers; ++i) {
    pool.Submit([] { throw FailpointException("serve_fault_test.pool"); });
  }
  bool rethrown = false;
  try {
    pool.WaitIdle();
  } catch (const FailpointException&) {
    rethrown = true;
  }
  EXPECT_TRUE(rethrown) << "the first exception must surface from WaitIdle";
  // The other five cannot be rethrown: they are counted — on the pool and
  // on the obs counter — instead of vanishing.
  EXPECT_EQ(pool.dropped_exceptions(), kThrowers - 1u);
  EXPECT_EQ(dropped_metric->Value() - metric_before, kThrowers - 1u);

  // The pool stays usable after the rethrow.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
