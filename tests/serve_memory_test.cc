// Memory-accounting invariants of the customer-state store and fleet:
// per-shard stats sum to the fleet total, accounting is monotone while
// customers accumulate state, the invariants survive a snapshot round
// trip, and the compact layout actually beats the heap layout.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "obs/metrics.h"
#include "serve/fleet.h"
#include "serve/state_store.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

FleetOptions MemFleetOptions(StateLayout layout) {
  FleetOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 4;
  options.num_threads = 1;
  options.granularity = retail::Granularity::kProduct;
  options.layout = layout;
  return options;
}

Receipt MakeReceipt(CustomerId customer, Day day,
                    std::vector<retail::ItemId> items) {
  Receipt receipt;
  receipt.customer = customer;
  receipt.day = day;
  receipt.spend = 1.0;
  receipt.items = std::move(items);
  return receipt;
}

// One day-ordered batch: `count` customers, a few items each, enough days
// to close windows and grow the per-item counters.
std::vector<Receipt> MonthBatch(size_t count, Day base_day) {
  std::vector<Receipt> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const CustomerId customer = static_cast<CustomerId>(i + 1);
    batch.push_back(MakeReceipt(
        customer, base_day,
        {static_cast<retail::ItemId>(1 + i % 11),
         static_cast<retail::ItemId>(50 + i % 5), 200}));
  }
  return batch;
}

void ExpectStatsEqual(const StateMemoryStats& a, const StateMemoryStats& b,
                      const char* what) {
  EXPECT_EQ(a.customers, b.customers) << what;
  EXPECT_EQ(a.scalar_bytes, b.scalar_bytes) << what;
  EXPECT_EQ(a.block_bytes, b.block_bytes) << what;
  EXPECT_EQ(a.arena_reserved_bytes, b.arena_reserved_bytes) << what;
  EXPECT_EQ(a.index_bytes, b.index_bytes) << what;
  EXPECT_EQ(a.shared_bytes, b.shared_bytes) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
}

TEST(ServeMemory, SumOfShardsEqualsStoreTotal) {
  for (const StateLayout layout :
       {StateLayout::kCompact, StateLayout::kHeap}) {
    StateStoreOptions options;
    options.scorer.window_span_days = 30;
    options.num_shards = 4;
    options.layout = layout;
    auto store = CustomerStateStore::Make(options).ValueOrDie();
    for (CustomerId customer = 1; customer <= 64; ++customer) {
      store.WithShard(store.ShardOf(customer),
                      [&](CustomerStateStore::ShardAccessor& access) {
                        auto state = access.GetOrCreate(customer);
                        for (Day day = 0; day < 120; day += 10) {
                          EXPECT_TRUE(
                              state.Observe(day, {1, customer % 7}).ok());
                        }
                        return 0;
                      });
    }

    StateMemoryStats sum;
    for (size_t shard = 0; shard < store.num_shards(); ++shard) {
      const StateMemoryStats stats = store.ShardMemoryUsage(shard);
      EXPECT_EQ(stats.total_bytes,
                stats.scalar_bytes + stats.index_bytes + stats.shared_bytes +
                    std::max(stats.block_bytes, stats.arena_reserved_bytes))
          << "shard " << shard << " layout " << StateLayoutToString(layout);
      sum += stats;
    }
    ExpectStatsEqual(sum, store.MemoryUsage(),
                     StateLayoutToString(layout).data());
    EXPECT_EQ(sum.customers, store.NumCustomers());
    EXPECT_GT(sum.total_bytes, 0u);
    if (layout == StateLayout::kHeap) {
      EXPECT_EQ(sum.arena_reserved_bytes, 0u);
      EXPECT_EQ(sum.shared_bytes, 0u);
    } else {
      EXPECT_GE(sum.arena_reserved_bytes, sum.block_bytes);
      EXPECT_GT(sum.shared_bytes, 0u);
    }
  }
}

TEST(ServeMemory, FleetTotalIsMonotoneDuringIngestAndPublishesGauge) {
  for (const StateLayout layout :
       {StateLayout::kCompact, StateLayout::kHeap}) {
    auto fleet =
        ScoringFleet::Make(MemFleetOptions(layout), nullptr).ValueOrDie();
    size_t last_total = 0;
    size_t last_customers = 0;
    for (int month = 0; month < 4; ++month) {
      const size_t count = 50 * (month + 1);
      ASSERT_TRUE(
          fleet.IngestBatch(MonthBatch(count, month * 30)).ok());
      const StateMemoryStats stats = fleet.MemoryUsage();
      EXPECT_EQ(stats.customers, fleet.NumCustomers());
      EXPECT_GE(stats.customers, last_customers);
      EXPECT_GE(stats.total_bytes, last_total)
          << "month " << month << " layout " << StateLayoutToString(layout);
      last_total = stats.total_bytes;
      last_customers = stats.customers;

      static obs::Gauge* const bytes_total =
          obs::MetricsRegistry::Global().GetGauge(
              "churnlab.serve.bytes_total");
      EXPECT_EQ(bytes_total->Value(),
                static_cast<double>(stats.total_bytes));
    }
  }
}

TEST(ServeMemory, AccountingSurvivesSnapshotRestoreRoundTrip) {
  for (const StateLayout layout :
       {StateLayout::kCompact, StateLayout::kHeap}) {
    auto fleet =
        ScoringFleet::Make(MemFleetOptions(layout), nullptr).ValueOrDie();
    for (int month = 0; month < 3; ++month) {
      ASSERT_TRUE(fleet.IngestBatch(MonthBatch(120, month * 30)).ok());
    }
    BinaryWriter writer;
    ASSERT_TRUE(fleet.SaveSnapshot(&writer).ok());
    BinaryReader reader(writer.buffer());
    auto restored =
        ScoringFleet::Restore(&reader, nullptr, /*num_threads=*/1, layout)
            .ValueOrDie();

    const StateMemoryStats before = fleet.MemoryUsage();
    const StateMemoryStats after = restored.MemoryUsage();
    EXPECT_EQ(after.customers, before.customers);
    EXPECT_GT(after.total_bytes, 0u);
    // The restored store satisfies the same accounting identity. (The max
    // picks the same side on every shard — arena_reserved >= block in the
    // compact layout, arena_reserved == 0 in the heap layout — so the
    // identity survives summation over shards.)
    EXPECT_EQ(after.total_bytes,
              after.scalar_bytes + after.index_bytes + after.shared_bytes +
                  std::max(after.block_bytes, after.arena_reserved_bytes))
        << StateLayoutToString(layout);
    // Compact block bytes are class-rounded, so the same logical state
    // costs the same live bytes whether grown incrementally or loaded in
    // one shot. (Heap capacities depend on the vector growth path, so no
    // such equality holds there.)
    if (layout == StateLayout::kCompact) {
      EXPECT_EQ(after.block_bytes, before.block_bytes);
    }
  }
}

TEST(ServeMemory, CompactLayoutUsesFewerBytesThanHeap) {
  // A population big enough that per-shard arena chunk tails amortize, and
  // enough windows that the heap layout's private per-monitor power tables
  // cost real bytes (the compact layout shares one table per shard).
  StateMemoryStats by_layout[2];
  for (const StateLayout layout :
       {StateLayout::kCompact, StateLayout::kHeap}) {
    auto fleet =
        ScoringFleet::Make(MemFleetOptions(layout), nullptr).ValueOrDie();
    for (int month = 0; month < 12; ++month) {
      ASSERT_TRUE(fleet.IngestBatch(MonthBatch(4000, month * 30)).ok());
    }
    by_layout[layout == StateLayout::kHeap ? 1 : 0] = fleet.MemoryUsage();
  }
  const StateMemoryStats& compact = by_layout[0];
  const StateMemoryStats& heap = by_layout[1];
  ASSERT_EQ(compact.customers, heap.customers);
  EXPECT_LT(compact.total_bytes, heap.total_bytes)
      << "compact " << compact.total_bytes << " vs heap "
      << heap.total_bytes;
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
