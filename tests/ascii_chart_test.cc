#include "eval/ascii_chart.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace eval {
namespace {

ChartSeries LineSeries(const char* label, char glyph,
                       std::vector<double> xs, std::vector<double> ys) {
  ChartSeries series;
  series.label = label;
  series.glyph = glyph;
  series.xs = std::move(xs);
  series.ys = std::move(ys);
  return series;
}

TEST(AsciiChart, RendersLegendAxesAndGlyphs) {
  const auto chart = RenderAsciiChart(
      {LineSeries("rising", '*', {0, 1, 2, 3}, {0.1, 0.4, 0.7, 0.9})},
      AsciiChartOptions{});
  ASSERT_TRUE(chart.ok()) << chart.status().ToString();
  const std::string& text = chart.ValueOrDie();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("legend:"), std::string::npos);
  EXPECT_NE(text.find("rising"), std::string::npos);
  EXPECT_NE(text.find("1.00"), std::string::npos);
  EXPECT_NE(text.find("0.00"), std::string::npos);
  EXPECT_NE(text.find("(month)"), std::string::npos);
}

TEST(AsciiChart, HighValuesAboveLowValues) {
  const auto chart =
      RenderAsciiChart({LineSeries("s", 'a', {0, 10}, {0.9, 0.9}),
                        LineSeries("t", 'b', {0, 10}, {0.1, 0.1})},
                       AsciiChartOptions{});
  ASSERT_TRUE(chart.ok());
  const std::string& text = chart.ValueOrDie();
  EXPECT_LT(text.find('a'), text.find('b'));  // 'a' on an earlier (higher) row
}

TEST(AsciiChart, MarkerColumnDrawn) {
  AsciiChartOptions options;
  options.x_marker = 5.0;
  const auto chart = RenderAsciiChart(
      {LineSeries("s", '*', {0, 10}, {0.5, 0.5})}, options);
  ASSERT_TRUE(chart.ok());
  EXPECT_NE(chart.ValueOrDie().find('|'), std::string::npos);
}

TEST(AsciiChart, MarkerOutsideRangeIgnored) {
  AsciiChartOptions options;
  options.x_marker = 99.0;
  const auto chart = RenderAsciiChart(
      {LineSeries("s", '*', {0, 10}, {0.5, 0.5})}, options);
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.ValueOrDie().find('|'), std::string::npos);
}

TEST(AsciiChart, ValuesOutsideYRangeClamped) {
  const auto chart = RenderAsciiChart(
      {LineSeries("s", '*', {0, 1}, {-5.0, 5.0})}, AsciiChartOptions{});
  ASSERT_TRUE(chart.ok());  // no crash; glyphs land on the borders
}

TEST(AsciiChart, LaterSeriesOverdrawEarlier) {
  const auto chart =
      RenderAsciiChart({LineSeries("under", 'u', {0, 10}, {0.5, 0.5}),
                        LineSeries("over", 'o', {0, 10}, {0.5, 0.5})},
                       AsciiChartOptions{});
  ASSERT_TRUE(chart.ok());
  const std::string& text = chart.ValueOrDie();
  // The overlapping line is drawn entirely with the later glyph: the grid
  // (everything before the legend) contains 'o' but no 'u'.
  const std::string grid = text.substr(0, text.find("legend:"));
  EXPECT_EQ(grid.find('u'), std::string::npos);
  EXPECT_NE(grid.find('o'), std::string::npos);
}

TEST(AsciiChart, ValidationErrors) {
  EXPECT_FALSE(RenderAsciiChart({}, AsciiChartOptions{}).ok());
  // Mismatched xs/ys.
  ChartSeries bad;
  bad.xs = {1, 2};
  bad.ys = {1};
  EXPECT_FALSE(RenderAsciiChart({bad}, AsciiChartOptions{}).ok());
  // Single x value.
  EXPECT_FALSE(
      RenderAsciiChart({LineSeries("s", '*', {3}, {0.5})}, AsciiChartOptions{})
          .ok());
  // Degenerate geometry.
  AsciiChartOptions tiny;
  tiny.width = 2;
  EXPECT_FALSE(
      RenderAsciiChart({LineSeries("s", '*', {0, 1}, {0, 1})}, tiny).ok());
  AsciiChartOptions bad_range;
  bad_range.y_min = 1.0;
  bad_range.y_max = 0.0;
  EXPECT_FALSE(
      RenderAsciiChart({LineSeries("s", '*', {0, 1}, {0, 1})}, bad_range)
          .ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
