# Smoke test of the churnlab CLI: simulate a tiny corpus, then run every
# read-side subcommand against it. Any non-zero exit fails the test.
#
# Invoked by CTest with -DCLI=<binary> -DWORK_DIR=<scratch dir>.

file(MAKE_DIRECTORY ${WORK_DIR})
set(DATASET ${WORK_DIR}/smoke.clb)

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE errors)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "churnlab ${ARGN} failed (${exit_code}):\n${output}\n${errors}")
  endif()
endfunction()

run_cli(simulate --out ${DATASET} --loyal 40 --defecting 40 --seed 9)
run_cli(stats --data ${DATASET})
run_cli(score --data ${DATASET} --out ${WORK_DIR}/scores.csv)
run_cli(explain --data ${DATASET} --customer 50)
run_cli(profile --data ${DATASET} --customer 50)
run_cli(profile --data ${DATASET} --customer 50 --at 6 --top 5)
run_cli(evaluate --data ${DATASET} --first_month 12 --last_month 24)
run_cli(forecast --data ${DATASET} --decision 14 --horizon 6)

# CSV round trip through the CLI.
run_cli(simulate --out ${WORK_DIR}/smoke_csv --csv --loyal 20 --defecting 20
        --seed 10)
run_cli(stats --data ${WORK_DIR}/smoke_csv)

# Unknown flags and subcommands must fail.
execute_process(COMMAND ${CLI} stats --bogus-flag x
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_QUIET)
if(exit_code EQUAL 0)
  message(FATAL_ERROR "unknown flag was accepted")
endif()
execute_process(COMMAND ${CLI} frobnicate
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_QUIET)
if(exit_code EQUAL 0)
  message(FATAL_ERROR "unknown subcommand was accepted")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
