# Smoke test of the churnlab CLI: simulate a tiny corpus, then run every
# read-side subcommand against it. Any non-zero exit fails the test.
#
# Invoked by CTest with -DCLI=<binary> -DWORK_DIR=<scratch dir>.

file(MAKE_DIRECTORY ${WORK_DIR})
set(DATASET ${WORK_DIR}/smoke.clb)

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE errors)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "churnlab ${ARGN} failed (${exit_code}):\n${output}\n${errors}")
  endif()
endfunction()

run_cli(simulate --out ${DATASET} --loyal 40 --defecting 40 --seed 9)
run_cli(stats --data ${DATASET})
run_cli(score --data ${DATASET} --out ${WORK_DIR}/scores.csv)
run_cli(explain --data ${DATASET} --customer 50)
run_cli(profile --data ${DATASET} --customer 50)
run_cli(profile --data ${DATASET} --customer 50 --at 6 --top 5)
run_cli(evaluate --data ${DATASET} --first_month 12 --last_month 24)
run_cli(forecast --data ${DATASET} --decision 14 --horizon 6)

# CSV round trip through the CLI.
run_cli(simulate --out ${WORK_DIR}/smoke_csv --csv --loyal 20 --defecting 20
        --seed 10)
run_cli(stats --data ${WORK_DIR}/smoke_csv)

# Telemetry: --metrics-out must produce a parseable versioned JSON document
# with at least one counter and one histogram (the dataset-load counters and
# the detailed-timing latency histograms are always populated by `score`).
set(METRICS_JSON ${WORK_DIR}/metrics.json)
run_cli(score --data ${DATASET} --metrics-out ${METRICS_JSON} --trace)
if(NOT EXISTS ${METRICS_JSON})
  message(FATAL_ERROR "--metrics-out did not write ${METRICS_JSON}")
endif()
file(READ ${METRICS_JSON} metrics_content)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON telemetry_version ERROR_VARIABLE json_error
         GET "${metrics_content}" churnlab_telemetry_version)
  if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "metrics JSON is unparseable: ${json_error}")
  endif()
  if(NOT telemetry_version EQUAL 1)
    message(FATAL_ERROR "unexpected telemetry version '${telemetry_version}'")
  endif()
  string(JSON num_counters LENGTH "${metrics_content}" counters)
  if(num_counters LESS 1)
    message(FATAL_ERROR "telemetry has no counters")
  endif()
  string(JSON num_histograms LENGTH "${metrics_content}" histograms)
  if(num_histograms LESS 1)
    message(FATAL_ERROR "telemetry has no histograms")
  endif()
  string(JSON trace_root ERROR_VARIABLE json_error
         GET "${metrics_content}" trace name)
  if(NOT trace_root STREQUAL "run")
    message(FATAL_ERROR "telemetry trace tree missing (root='${trace_root}')")
  endif()
else()
  # Pre-3.19 fallback: structural greps instead of real JSON parsing.
  foreach(needle "\"churnlab_telemetry_version\":1" "\"counters\":{\"churnlab."
          "\"histograms\":{\"churnlab." "\"trace\":")
    string(FIND "${metrics_content}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "telemetry JSON lacks ${needle}")
    endif()
  endforeach()
endif()

# The structured JSONL sink must be created and non-empty under --verbose.
run_cli(evaluate --data ${DATASET} --first_month 12 --last_month 24
        --verbose --log-json ${WORK_DIR}/events.jsonl)
if(NOT EXISTS ${WORK_DIR}/events.jsonl)
  message(FATAL_ERROR "--log-json did not write events.jsonl")
endif()

# Unknown flags and subcommands must fail.
execute_process(COMMAND ${CLI} stats --bogus-flag x
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_QUIET)
if(exit_code EQUAL 0)
  message(FATAL_ERROR "unknown flag was accepted")
endif()
execute_process(COMMAND ${CLI} frobnicate
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_QUIET)
if(exit_code EQUAL 0)
  message(FATAL_ERROR "unknown subcommand was accepted")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
