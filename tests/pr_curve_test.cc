#include "eval/pr_curve.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace churnlab {
namespace eval {
namespace {

constexpr auto kHigher = ScoreOrientation::kHigherIsPositive;
constexpr auto kLower = ScoreOrientation::kLowerIsPositive;

TEST(PrCurve, PerfectRanking) {
  const auto curve =
      PrCurve({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}, kHigher).ValueOrDie();
  // Start point, then the perfect head keeps precision 1 through recall 1.
  for (const PrPoint& point : curve) {
    if (point.recall <= 1.0 && point.recall > 0.0 && point.threshold >= 0.8) {
      EXPECT_DOUBLE_EQ(point.precision, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(
      AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}, kHigher)
          .ValueOrDie(),
      1.0);
}

TEST(AveragePrecision, RandomScoresApproachBaseRate) {
  Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.Bernoulli(0.2) ? 1 : 0);
  }
  const double ap = AveragePrecision(scores, labels, kHigher).ValueOrDie();
  EXPECT_NEAR(ap, 0.2, 0.03);
}

TEST(AveragePrecision, HandComputed) {
  // Ranking (desc): 1, 0, 1, 0. AP = 0.5*1 + 0.5*(2/3) = 5/6.
  const double ap =
      AveragePrecision({0.9, 0.8, 0.7, 0.6}, {1, 0, 1, 0}, kHigher)
          .ValueOrDie();
  EXPECT_NEAR(ap, 5.0 / 6.0, 1e-12);
}

TEST(PrCurve, RecallMonotoneNondecreasing) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int label = rng.Bernoulli(0.3) ? 1 : 0;
    scores.push_back(
        std::round(rng.Normal(label * 0.7, 1.0) * 4.0) / 4.0);  // ties
    labels.push_back(label);
  }
  const auto curve = PrCurve(scores, labels, kHigher).ValueOrDie();
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_GE(curve[i].precision, 0.0);
    EXPECT_LE(curve[i].precision, 1.0);
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(PrCurve, LowerOrientationForStabilityScores) {
  const auto ap =
      AveragePrecision({0.1, 0.2, 0.9, 0.95}, {1, 1, 0, 0}, kLower)
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(ap, 1.0);
}

TEST(PrCurve, SingleClassNegativeOnlyFails) {
  EXPECT_FALSE(PrCurve({0.5, 0.6}, {0, 0}, kHigher).ok());
}

TEST(PrCurve, AllPositivesIsLegal) {
  // Unlike ROC, PR is defined with no negatives: precision is 1 throughout.
  const auto curve = PrCurve({0.5, 0.6}, {1, 1}, kHigher).ValueOrDie();
  for (const PrPoint& point : curve) {
    EXPECT_DOUBLE_EQ(point.precision, 1.0);
  }
}

TEST(PrCurve, ValidationErrors) {
  EXPECT_FALSE(PrCurve({}, {}, kHigher).ok());
  EXPECT_FALSE(PrCurve({0.5}, {1, 0}, kHigher).ok());
  EXPECT_FALSE(PrCurve({0.5, 0.4}, {1, 2}, kHigher).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
