// Property/fuzz tests for journal durability: seeded corruption (bit
// flips, truncation, slice duplication, garbage insertion) of on-disk
// journal segments and checkpoint records. Recovery must either succeed
// with a frame list that is a contiguous, content-identical prefix of the
// pristine journal starting at the checkpoint watermark, or fail with a
// clean DataLoss — never crash, hang, or silently skip an interior frame.
// The suites run under ASan/UBSan and TSan via scripts/check_crash.sh.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/journal.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

constexpr uint64_t kTotalReceipts = 60;
constexpr uint64_t kWatermark = 20;
constexpr size_t kFrameReceipts = 5;

std::vector<Receipt> PristineReceipts() {
  std::vector<Receipt> receipts;
  for (uint64_t i = 0; i < kTotalReceipts; ++i) {
    Receipt receipt;
    receipt.customer = static_cast<CustomerId>(1 + i % 9);
    receipt.day = static_cast<Day>(i / 3);
    receipt.spend = 0.5 + 0.25 * static_cast<double>(i);
    receipt.items = {static_cast<retail::ItemId>(10 + i % 4)};
    receipts.push_back(std::move(receipt));
  }
  return receipts;
}

/// Builds the pristine journal once: 12 frames of 5 receipts over several
/// small segments, checkpointed at sequence 20.
const std::string& PristineJournalDir() {
  static const std::string dir = [] {
    const std::string path = testing::TempDir() + "/journal_fuzz_pristine";
    std::filesystem::remove_all(path);
    JournalOptions options;
    options.directory = path;
    options.fsync = FsyncPolicy::kNone;
    options.max_segment_bytes = 160;  // several segments
    auto journal = IngestJournal::Open(options).ValueOrDie();
    const std::vector<Receipt> receipts = PristineReceipts();
    for (uint64_t first = 0; first < kTotalReceipts;
         first += kFrameReceipts) {
      const std::span<const Receipt> frame(receipts.data() + first,
                                           kFrameReceipts);
      EXPECT_TRUE(journal.Append(first, frame).ok());
      if (first + kFrameReceipts == kWatermark) {
        SnapshotRef ref;
        ref.kind = SnapshotRef::Kind::kGeneration;
        ref.size = 1234;
        ref.crc = 5678;
        EXPECT_TRUE(journal.Checkpoint(kWatermark, ref).ok());
      }
    }
    journal.Close();
    return path;
  }();
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One seeded mutation of a file's bytes: the classic torn/corrupted-file
/// shapes a crashed or bit-rotted disk produces.
std::string Mutate(const std::string& pristine, std::mt19937* rng) {
  std::string bytes = pristine;
  if (bytes.empty()) return bytes;
  std::uniform_int_distribution<int> kind_dist(0, 3);
  switch (kind_dist(*rng)) {
    case 0: {  // flip 1..8 bits
      std::uniform_int_distribution<size_t> pos_dist(0, bytes.size() - 1);
      std::uniform_int_distribution<int> bit_dist(0, 7);
      std::uniform_int_distribution<int> count_dist(1, 8);
      const int flips = count_dist(*rng);
      for (int i = 0; i < flips; ++i) {
        bytes[pos_dist(*rng)] ^= static_cast<char>(1u << bit_dist(*rng));
      }
      break;
    }
    case 1: {  // truncate (a torn write)
      std::uniform_int_distribution<size_t> len_dist(0, bytes.size() - 1);
      bytes.resize(len_dist(*rng));
      break;
    }
    case 2: {  // duplicate a slice (a replayed/doubled write)
      std::uniform_int_distribution<size_t> start_dist(0, bytes.size() - 1);
      const size_t start = start_dist(*rng);
      std::uniform_int_distribution<size_t> len_dist(
          1, bytes.size() - start);
      const size_t length = len_dist(*rng);
      std::uniform_int_distribution<size_t> at_dist(0, bytes.size());
      bytes.insert(at_dist(*rng), bytes.substr(start, length));
      break;
    }
    default: {  // insert garbage
      std::uniform_int_distribution<size_t> at_dist(0, bytes.size());
      std::uniform_int_distribution<int> len_dist(1, 24);
      std::uniform_int_distribution<int> byte_dist(0, 255);
      std::string garbage;
      for (int i = len_dist(*rng); i > 0; --i) {
        garbage.push_back(static_cast<char>(byte_dist(*rng)));
      }
      bytes.insert(at_dist(*rng), garbage);
      break;
    }
  }
  return bytes;
}

/// The durability contract, checked after every mutation: recovery either
/// yields a contiguous, content-identical prefix of the pristine stream
/// starting exactly at the watermark, or fails as DataLoss. A sequence
/// gap — an interior frame silently skipped — is never acceptable.
void CheckRecoveryContract(const std::string& dir) {
  JournalOptions options;
  options.directory = dir;
  options.recover = true;
  options.read_only = true;
  JournalRecovery recovery;
  const Result<IngestJournal> journal =
      IngestJournal::Open(options, &recovery);
  if (!journal.ok()) {
    EXPECT_TRUE(journal.status().IsDataLoss())
        << "recovery failed with a non-DataLoss status: "
        << journal.status().ToString();
    return;
  }
  const std::vector<Receipt> pristine = PristineReceipts();
  // Watermark may differ from kWatermark only if the checkpoint itself
  // was the mutated file — in which case recovery either failed above or
  // the record still parsed (rename-atomicity means a *real* crash never
  // tears it; a fuzz flip that keeps the CRC valid is astronomically
  // unlikely). Frames must resume exactly at whatever watermark was read.
  uint64_t expected = recovery.watermark;
  for (const JournalFrame& frame : recovery.frames) {
    ASSERT_EQ(frame.first_sequence, expected)
        << "recovery skipped interior sequences";
    ASSERT_LE(frame.end_sequence(), kTotalReceipts)
        << "recovery invented receipts past the pristine stream";
    for (size_t i = 0; i < frame.receipts.size(); ++i) {
      const Receipt& got = frame.receipts[i];
      const Receipt& want = pristine[frame.first_sequence + i];
      ASSERT_EQ(got.customer, want.customer);
      ASSERT_EQ(got.day, want.day);
      ASSERT_EQ(got.spend, want.spend);
      ASSERT_EQ(got.items, want.items);
    }
    expected = frame.end_sequence();
  }
  EXPECT_EQ(recovery.next_sequence, expected == recovery.watermark
                                        ? recovery.next_sequence
                                        : expected);
}

TEST(JournalFuzzTest, CorruptedSegmentsRecoverAtPrefixOrFailCleanly) {
  const std::string pristine_dir = PristineJournalDir();
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(pristine_dir)) {
    files.push_back(entry.path().filename().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 3u);  // several segments + checkpoint

  const std::string work_dir = testing::TempDir() + "/journal_fuzz_work";
  for (uint32_t seed = 0; seed < 300; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);
    std::filesystem::remove_all(work_dir);
    std::filesystem::copy(pristine_dir, work_dir);
    // Mutate one file (usually) or two (sometimes): crashes corrupt the
    // tail; fuzzing corrupts anywhere.
    std::uniform_int_distribution<size_t> file_dist(0, files.size() - 1);
    std::uniform_int_distribution<int> double_dist(0, 3);
    const int mutations = double_dist(rng) == 0 ? 2 : 1;
    for (int i = 0; i < mutations; ++i) {
      const std::string path = work_dir + "/" + files[file_dist(rng)];
      WriteFile(path, Mutate(ReadFile(path), &rng));
    }
    CheckRecoveryContract(work_dir);
  }
}

TEST(JournalFuzzTest, WholeFileDeletionRecoversOrFailsCleanly) {
  const std::string pristine_dir = PristineJournalDir();
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(pristine_dir)) {
    files.push_back(entry.path().filename().string());
  }
  std::sort(files.begin(), files.end());
  const std::string work_dir = testing::TempDir() + "/journal_fuzz_delete";
  for (const std::string& victim : files) {
    SCOPED_TRACE("deleting " + victim);
    std::filesystem::remove_all(work_dir);
    std::filesystem::copy(pristine_dir, work_dir);
    std::filesystem::remove(work_dir + "/" + victim);
    CheckRecoveryContract(work_dir);
  }
}

TEST(JournalFuzzTest, DuplicatedWholeFrameIsNeverSilentlyReplayed) {
  // Append the final frame's exact bytes a second time: the duplicate
  // starts at an already-consumed sequence, which recovery must reject
  // (DataLoss) or discard as tail — never replay twice.
  const std::string pristine_dir = PristineJournalDir();
  const std::string work_dir = testing::TempDir() + "/journal_fuzz_dup";
  std::filesystem::remove_all(work_dir);
  std::filesystem::copy(pristine_dir, work_dir);
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(work_dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() == ".chlj" &&
        (newest.empty() || name > newest)) {
      newest = name;
    }
  }
  ASSERT_FALSE(newest.empty());
  const std::string path = work_dir + "/" + newest;
  std::string bytes = ReadFile(path);
  // The last frame: scan from the header to find its start offset is
  // overkill — duplicating the whole file body after the header achieves
  // the same "replayed frames" shape.
  WriteFile(path, bytes + bytes.substr(10));
  CheckRecoveryContract(work_dir);
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
