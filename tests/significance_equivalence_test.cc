// Randomized equivalence suite: the incremental SignificanceTracker against
// the scan-based ReferenceSignificanceTracker on long random histories,
// across every weighting regime (alpha = 1, moderate and steep alphas, an
// actively-biting exponent clamp, and the EWMA variant). Agreement bound:
// 1e-9 relative.

#include "core/significance.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/significance_reference.h"

namespace churnlab {
namespace core {
namespace {

constexpr double kTolerance = 1e-9;

void ExpectClose(double actual, double expected, const std::string& what) {
  const double scale =
      std::max(1.0, std::max(std::fabs(actual), std::fabs(expected)));
  EXPECT_NEAR(actual, expected, kTolerance * scale) << what;
}

/// One random sorted+deduplicated window symbol set over [0, catalogue).
std::vector<Symbol> RandomWindow(Rng* rng, size_t catalogue) {
  std::vector<Symbol> symbols;
  for (size_t s = 0; s < catalogue; ++s) {
    // Uneven presence probabilities so contain counts spread out: some
    // symbols are near-always present, some rare, some never seen.
    const double p = static_cast<double>(s % 7) / 8.0;
    if (rng->Bernoulli(p)) symbols.push_back(static_cast<Symbol>(s));
  }
  return symbols;  // ascending by construction
}

void RunEquivalence(const SignificanceOptions& options, uint64_t seed,
                    int32_t num_windows, size_t catalogue) {
  SignificanceTracker tracker = SignificanceTracker::Make(options).ValueOrDie();
  ReferenceSignificanceTracker reference =
      ReferenceSignificanceTracker::Make(options).ValueOrDie();
  Rng rng(seed);
  for (int32_t k = 0; k < num_windows; ++k) {
    const std::vector<Symbol> window = RandomWindow(&rng, catalogue);
    const std::string at = "window " + std::to_string(k);

    for (size_t s = 0; s < catalogue; ++s) {
      const Symbol symbol = static_cast<Symbol>(s);
      EXPECT_EQ(tracker.ContainCount(symbol), reference.ContainCount(symbol))
          << at << " symbol " << s;
      EXPECT_EQ(tracker.MissCount(symbol), reference.MissCount(symbol))
          << at << " symbol " << s;
      ExpectClose(tracker.SignificanceOf(symbol),
                  reference.SignificanceOf(symbol),
                  at + " significance of symbol " + std::to_string(s));
    }
    ExpectClose(tracker.TotalSignificance(), reference.TotalSignificance(),
                at + " total");
    ExpectClose(tracker.PresentSignificance(window),
                reference.PresentSignificance(window), at + " present");
    EXPECT_EQ(tracker.SeenSymbols(), reference.SeenSymbols()) << at;

    tracker.AdvanceWindow(window);
    reference.AdvanceWindow(window);
    EXPECT_EQ(tracker.windows_seen(), reference.windows_seen()) << at;
  }
}

TEST(SignificanceEquivalence, AlphaOne) {
  SignificanceOptions options;
  options.alpha = 1.0;  // degenerate: every seen symbol weighs exactly 1
  RunEquivalence(options, 101, 150, 48);
}

TEST(SignificanceEquivalence, ModerateAlphas) {
  for (const double alpha : {1.5, 2.0}) {
    SignificanceOptions options;
    options.alpha = alpha;
    RunEquivalence(options, 202 + static_cast<uint64_t>(alpha * 10), 150, 48);
  }
}

TEST(SignificanceEquivalence, SteepAlphaLongHistory) {
  // alpha = 4 over 150 windows spans ~180 decades of significance without
  // hitting the default clamp; stresses the recurrence's dynamic range.
  SignificanceOptions options;
  options.alpha = 4.0;
  RunEquivalence(options, 303, 150, 48);
}

TEST(SignificanceEquivalence, ActiveClamp) {
  // max_abs_exponent = 8 starts biting once windows_seen > 8, forcing the
  // incremental tracker onto its histogram fallback for most of the run.
  for (const double alpha : {1.5, 2.0, 4.0}) {
    SignificanceOptions options;
    options.alpha = alpha;
    options.max_abs_exponent = 8.0;
    RunEquivalence(options, 404 + static_cast<uint64_t>(alpha * 10), 120, 48);
  }
}

TEST(SignificanceEquivalence, ClampBoundaryExactlyAtHorizon) {
  // windows_seen == max_abs_exponent is the last window where the
  // incremental total is trusted; cross the boundary by a few windows.
  SignificanceOptions options;
  options.alpha = 2.0;
  options.max_abs_exponent = 16.0;
  RunEquivalence(options, 505, 24, 32);
}

TEST(SignificanceEquivalence, Ewma) {
  for (const double lambda : {0.5, 0.7, 0.95}) {
    SignificanceOptions options;
    options.kind = SignificanceKind::kEwma;
    options.ewma_lambda = lambda;
    RunEquivalence(options, 606 + static_cast<uint64_t>(lambda * 100), 150,
                   48);
  }
}

TEST(SignificanceEquivalence, SparseHistoryWithLongAbsences) {
  // Mostly-empty windows: lazy EWMA decay and the alpha recurrence both have
  // to bridge long gaps where nothing is present.
  for (const SignificanceKind kind :
       {SignificanceKind::kAlphaPower, SignificanceKind::kEwma}) {
    SignificanceOptions options;
    options.kind = kind;
    SignificanceTracker tracker =
        SignificanceTracker::Make(options).ValueOrDie();
    ReferenceSignificanceTracker reference =
        ReferenceSignificanceTracker::Make(options).ValueOrDie();
    Rng rng(707);
    for (int32_t k = 0; k < 200; ++k) {
      std::vector<Symbol> window;
      if (k % 17 == 0) window = RandomWindow(&rng, 24);
      ExpectClose(tracker.TotalSignificance(), reference.TotalSignificance(),
                  "sparse window " + std::to_string(k));
      tracker.AdvanceWindow(window);
      reference.AdvanceWindow(window);
    }
    for (Symbol s = 0; s < 24; ++s) {
      ExpectClose(tracker.SignificanceOf(s), reference.SignificanceOf(s),
                  "sparse final symbol " + std::to_string(s));
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace churnlab
