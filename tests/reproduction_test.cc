// Seed-robustness of the headline reproduction: Figure 1's qualitative
// shape must hold for any simulation seed, not just the default. Each
// parameterised case runs the full pipeline (simulate -> both models ->
// AUROC series) on an independent corpus.

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace churnlab {
namespace eval {
namespace {

class Figure1SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Figure1SeedSweep, QualitativeShapeHolds) {
  Figure1Options options;
  options.scenario.population.num_loyal = 150;
  options.scenario.population.num_defecting = 150;
  options.scenario.seed = GetParam();
  const Figure1Result result =
      ExperimentRunner::Make(options).ValueOrDie().Run().ValueOrDie();

  double stability_pre = -1.0;   // month 14
  double stability_plus2 = -1.0; // month 20 (onset + 2)
  double stability_late = -1.0;  // month 24
  double rfm_plus2 = -1.0;
  for (const Figure1Row& row : result.rows) {
    if (row.report_month == 14) stability_pre = row.stability_auroc;
    if (row.report_month == 20) {
      stability_plus2 = row.stability_auroc;
      rfm_plus2 = row.rfm_auroc;
    }
    if (row.report_month == 24) stability_late = row.stability_auroc;
  }
  ASSERT_GE(stability_pre, 0.0);

  // (i) chance-level before the onset;
  EXPECT_NEAR(stability_pre, 0.5, 0.12) << "seed " << GetParam();
  // (ii) clear detection two months after the onset (paper: 0.79);
  EXPECT_GT(stability_plus2, 0.65) << "seed " << GetParam();
  // (iii) still improving later;
  EXPECT_GT(stability_late, stability_plus2 - 0.05) << "seed " << GetParam();
  EXPECT_GT(stability_late, 0.85) << "seed " << GetParam();
  // (iv) RFM comparable, not wildly divergent.
  EXPECT_NEAR(stability_plus2, rfm_plus2, 0.2) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Figure1SeedSweep,
                         ::testing::Values(7, 1001, 424242));

}  // namespace
}  // namespace eval
}  // namespace churnlab
