#include "rfm/sequence_model.h"

#include <gtest/gtest.h>

#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/roc.h"

namespace churnlab {
namespace rfm {
namespace {

retail::Dataset MakeScenario(size_t per_cohort, uint64_t seed = 61) {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = per_cohort;
  config.population.num_defecting = per_cohort;
  config.seed = seed;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

TEST(SequenceModel, MakeValidatesOptions) {
  SequenceModelOptions bad_span;
  bad_span.window_span_months = 0;
  EXPECT_FALSE(SequenceModel::Make(bad_span).ok());
  SequenceModelOptions bad_receipts;
  bad_receipts.last_receipts = 0;
  EXPECT_FALSE(SequenceModel::Make(bad_receipts).ok());
  SequenceModelOptions bad_profile;
  bad_profile.profile_segments = 0;
  EXPECT_FALSE(SequenceModel::Make(bad_profile).ok());
  SequenceModelOptions bad_folds;
  bad_folds.cv_folds = 1;
  EXPECT_FALSE(SequenceModel::Make(bad_folds).ok());
  EXPECT_TRUE(SequenceModel::Make(SequenceModelOptions{}).ok());
}

TEST(SequenceModel, FeatureNamesStable) {
  const auto names = SequenceModel::FeatureNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "jaccard_last_vs_profile");
  EXPECT_EQ(names[4], "receipts_in_window");
}

TEST(SequenceModel, ScoresAreProbabilities) {
  const retail::Dataset dataset = MakeScenario(50);
  const auto model = SequenceModel::Make(SequenceModelOptions{}).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  EXPECT_EQ(scores.num_rows(), 100u);
  for (size_t row = 0; row < scores.num_rows(); ++row) {
    for (int32_t window = 0; window < scores.num_windows(); ++window) {
      EXPECT_GE(scores.At(row, window), 0.0);
      EXPECT_LE(scores.At(row, window), 1.0);
    }
  }
}

TEST(SequenceModel, DetectsAttritionAfterOnset) {
  const retail::Dataset dataset = MakeScenario(150);
  const auto model = SequenceModel::Make(SequenceModelOptions{}).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto series =
      eval::AurocPerWindow(dataset, scores,
                           eval::ScoreOrientation::kHigherIsPositive, 2)
          .ValueOrDie();
  double before = 0.0;
  double after = 0.0;
  for (const eval::WindowAuroc& point : series) {
    if (point.report_month == 14) before = point.auroc;
    if (point.report_month == 24) after = point.auroc;
  }
  EXPECT_NEAR(before, 0.5, 0.12);
  EXPECT_GT(after, 0.8);
}

TEST(SequenceModel, DeterministicAcrossRuns) {
  const retail::Dataset dataset = MakeScenario(40);
  const auto model = SequenceModel::Make(SequenceModelOptions{}).ValueOrDie();
  const auto a = model.ScoreDataset(dataset).ValueOrDie();
  const auto b = model.ScoreDataset(dataset).ValueOrDie();
  for (size_t row = 0; row < a.num_rows(); ++row) {
    for (int32_t window = 0; window < a.num_windows(); ++window) {
      EXPECT_DOUBLE_EQ(a.At(row, window), b.At(row, window));
    }
  }
}

TEST(SequenceModel, FailsWithoutLabels) {
  retail::Dataset dataset = MakeScenario(10);
  for (const retail::CustomerId customer : dataset.store().Customers()) {
    dataset.SetLabel(customer, {retail::Cohort::kUnlabeled, -1});
  }
  const auto model = SequenceModel::Make(SequenceModelOptions{}).ValueOrDie();
  EXPECT_FALSE(model.ScoreDataset(dataset).ok());
}

TEST(SequenceModel, TinyCohortsFallBackToInSample) {
  const retail::Dataset dataset = MakeScenario(3);
  const auto model = SequenceModel::Make(SequenceModelOptions{}).ValueOrDie();
  EXPECT_TRUE(model.ScoreDataset(dataset).ok());
}

TEST(SequenceModel, UnfinalizedDatasetFails) {
  retail::Dataset dataset;
  retail::Receipt receipt;
  receipt.customer = 1;
  receipt.day = 0;
  receipt.items = {0};
  ASSERT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  const auto model = SequenceModel::Make(SequenceModelOptions{}).ValueOrDie();
  EXPECT_FALSE(model.ScoreDataset(dataset).ok());
}

}  // namespace
}  // namespace rfm
}  // namespace churnlab
