#include "retail/transaction_store.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace retail {
namespace {

Receipt MakeReceipt(CustomerId customer, Day day,
                    std::vector<ItemId> items, double spend = 10.0) {
  Receipt receipt;
  receipt.customer = customer;
  receipt.day = day;
  receipt.items = std::move(items);
  receipt.spend = spend;
  return receipt;
}

TEST(TransactionStore, AppendAndFinalize) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(2, 5, {1, 2})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(1, 3, {3})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(2, 1, {4})).ok());
  EXPECT_FALSE(store.finalized());
  store.Finalize();
  EXPECT_TRUE(store.finalized());
  EXPECT_EQ(store.num_receipts(), 3u);
  EXPECT_EQ(store.num_customers(), 2u);
}

TEST(TransactionStore, HistoryIsChronological) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(7, 30, {1})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(7, 10, {2})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(7, 20, {3})).ok());
  store.Finalize();
  const auto history = store.History(7);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].day, 10);
  EXPECT_EQ(history[1].day, 20);
  EXPECT_EQ(history[2].day, 30);
}

TEST(TransactionStore, HistoryOfUnknownCustomerIsEmpty) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(1, 0, {1})).ok());
  store.Finalize();
  EXPECT_TRUE(store.History(99).empty());
}

TEST(TransactionStore, ItemsSortedAndDeduplicated) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(1, 0, {5, 1, 5, 3, 1})).ok());
  store.Finalize();
  const auto history = store.History(1);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].items, (std::vector<ItemId>{1, 3, 5}));
}

TEST(TransactionStore, CustomersSortedAscending) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(9, 0, {1})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(2, 0, {1})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(5, 0, {1})).ok());
  store.Finalize();
  EXPECT_EQ(store.Customers(), (std::vector<CustomerId>{2, 5, 9}));
}

TEST(TransactionStore, DayRangeTracked) {
  TransactionStore store;
  EXPECT_EQ(store.max_day(), -1);
  ASSERT_TRUE(store.Append(MakeReceipt(1, 42, {1})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(1, 7, {1})).ok());
  EXPECT_EQ(store.min_day(), 7);
  EXPECT_EQ(store.max_day(), 42);
}

TEST(TransactionStore, ValidationErrors) {
  TransactionStore store;
  EXPECT_TRUE(store.Append(MakeReceipt(kInvalidCustomer, 0, {1}))
                  .IsInvalidArgument());
  EXPECT_TRUE(store.Append(MakeReceipt(1, -1, {1})).IsInvalidArgument());
  EXPECT_TRUE(
      store.Append(MakeReceipt(1, 0, {kInvalidItem})).IsInvalidArgument());
  store.Finalize();
  EXPECT_TRUE(store.Append(MakeReceipt(1, 0, {1})).IsInvalidArgument());
}

TEST(TransactionStore, EmptyBasketAllowed) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(1, 0, {})).ok());
  store.Finalize();
  EXPECT_EQ(store.History(1).size(), 1u);
}

TEST(TransactionStore, CountDistinctItems) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(1, 0, {1, 2})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(2, 0, {2, 7})).ok());
  store.Finalize();
  EXPECT_EQ(store.CountDistinctItems(), 3u);
  EXPECT_EQ(store.item_id_bound(), 8u);
  // Cached second call returns the same.
  EXPECT_EQ(store.CountDistinctItems(), 3u);
}

TEST(TransactionStore, FinalizeIsIdempotent) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(1, 0, {1})).ok());
  store.Finalize();
  store.Finalize();
  EXPECT_EQ(store.num_receipts(), 1u);
}

TEST(TransactionStore, StableOrderForSameDayReceipts) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(1, 5, {1}, 1.0)).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(1, 5, {2}, 2.0)).ok());
  store.Finalize();
  const auto history = store.History(1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_DOUBLE_EQ(history[0].spend, 1.0);  // insertion order preserved
  EXPECT_DOUBLE_EQ(history[1].spend, 2.0);
}

TEST(TransactionStore, AllReceiptsSpansEveryCustomer) {
  TransactionStore store;
  ASSERT_TRUE(store.Append(MakeReceipt(3, 1, {1})).ok());
  ASSERT_TRUE(store.Append(MakeReceipt(1, 2, {2})).ok());
  store.Finalize();
  const auto all = store.AllReceipts();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].customer, 1u);  // sorted by customer first
  EXPECT_EQ(all[1].customer, 3u);
}

}  // namespace
}  // namespace retail
}  // namespace churnlab
