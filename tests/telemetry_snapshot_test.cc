// Unit tests for the TelemetrySnapshotter: header + schema version, strict
// seq/t_ns monotonicity, counter total/delta semantics (baseline at Start,
// reset handling), the final sample taken by Stop, and error paths.

#include "obs/snapshot.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace churnlab {
namespace obs {
namespace {

std::vector<JsonValue> ReadJsonl(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << path;
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (parsed.ok()) lines.push_back(std::move(parsed).ValueOrDie());
  }
  return lines;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + name;
}

TEST(TelemetrySnapshot, HeaderCarriesSchemaVersionAndInterval) {
  MetricsRegistry registry;
  const std::string path = TempPath("ts_header.jsonl");
  TelemetrySnapshotter snapshotter({path, /*interval_ms=*/500}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  snapshotter.Stop();

  const std::vector<JsonValue> lines = ReadJsonl(path);
  ASSERT_GE(lines.size(), 2u);  // header + the final sample from Stop.
  const JsonValue* version = lines[0].Find("churnlab_timeseries_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, kTimeseriesSchemaVersion);
  const JsonValue* interval = lines[0].Find("interval_ms");
  ASSERT_NE(interval, nullptr);
  EXPECT_EQ(interval->number, 500.0);
  EXPECT_NE(lines[0].Find("started_at_ns"), nullptr);
  std::remove(path.c_str());
}

TEST(TelemetrySnapshot, CountersReportTotalAndDeltaFromStartBaseline) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  counter->Increment(100);  // Pre-Start activity must not count as delta.

  const std::string path = TempPath("ts_delta.jsonl");
  TelemetrySnapshotter snapshotter({path, /*interval_ms=*/60000}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  counter->Increment(5);
  snapshotter.Stop();  // Takes the final sample.

  const std::vector<JsonValue> lines = ReadJsonl(path);
  ASSERT_GE(lines.size(), 2u);
  const JsonValue& sample = lines.back();
  const JsonValue* counters = sample.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* entry = counters->Find("test.counter");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("total")->number, 105.0);
  EXPECT_EQ(entry->Find("delta")->number, 5.0);
  std::remove(path.c_str());
}

TEST(TelemetrySnapshot, SeqAndTimestampAreStrictlyMonotonic) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.ticks");
  const std::string path = TempPath("ts_monotonic.jsonl");
  TelemetrySnapshotter snapshotter({path, /*interval_ms=*/10}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  for (int i = 0; i < 5; ++i) {
    counter->Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  snapshotter.Stop();
  EXPECT_GE(snapshotter.samples_taken(), 2u);

  const std::vector<JsonValue> lines = ReadJsonl(path);
  ASSERT_GE(lines.size(), 3u);  // header + >= 2 samples.
  double prev_seq = -1.0;
  double prev_t = -1.0;
  uint64_t delta_sum = 0;
  double last_total = 0.0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const JsonValue* seq = lines[i].Find("seq");
    const JsonValue* t_ns = lines[i].Find("t_ns");
    ASSERT_NE(seq, nullptr);
    ASSERT_NE(t_ns, nullptr);
    EXPECT_GT(seq->number, prev_seq);
    EXPECT_GT(t_ns->number, prev_t);
    prev_seq = seq->number;
    prev_t = t_ns->number;
    if (const JsonValue* counters = lines[i].Find("counters")) {
      if (const JsonValue* entry = counters->Find("test.ticks")) {
        delta_sum += static_cast<uint64_t>(entry->Find("delta")->number);
        last_total = entry->Find("total")->number;
      }
    }
  }
  // Deltas across the run must sum to the final total (baseline was 0).
  EXPECT_EQ(delta_sum, 5u);
  EXPECT_EQ(last_total, 5.0);
  std::remove(path.c_str());
}

TEST(TelemetrySnapshot, CounterResetYieldsDeltaOfNewTotal) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.reset");
  counter->Increment(50);
  const std::string path = TempPath("ts_reset.jsonl");
  TelemetrySnapshotter snapshotter({path, /*interval_ms=*/60000}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());  // Baseline: 50.
  counter->Reset();
  counter->Increment(3);  // Total 3 < baseline 50: treated as post-reset.
  snapshotter.Stop();

  const std::vector<JsonValue> lines = ReadJsonl(path);
  const JsonValue* entry =
      lines.back().Find("counters")->Find("test.reset");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("total")->number, 3.0);
  EXPECT_EQ(entry->Find("delta")->number, 3.0);
  std::remove(path.c_str());
}

TEST(TelemetrySnapshot, HistogramsExportCountMeanAndQuantiles) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("test.lat_us");
  for (int i = 1; i <= 10; ++i) histogram->Record(static_cast<double>(i));
  const std::string path = TempPath("ts_hist.jsonl");
  TelemetrySnapshotter snapshotter({path, /*interval_ms=*/60000}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  snapshotter.Stop();

  const std::vector<JsonValue> lines = ReadJsonl(path);
  const JsonValue* entry =
      lines.back().Find("histograms")->Find("test.lat_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("count")->number, 10.0);
  EXPECT_NEAR(entry->Find("mean")->number, 5.5, 1e-9);
  EXPECT_LE(entry->Find("p50")->number, entry->Find("p90")->number);
  EXPECT_LE(entry->Find("p90")->number, entry->Find("p99")->number);
  std::remove(path.c_str());
}

TEST(TelemetrySnapshot, StartFailsOnUnwritablePathAndWhenRunning) {
  MetricsRegistry registry;
  TelemetrySnapshotter bad({"/nonexistent-dir-7c1/ts.jsonl", 100}, &registry);
  EXPECT_FALSE(bad.Start().ok());
  EXPECT_FALSE(bad.running());

  const std::string path = TempPath("ts_running.jsonl");
  TelemetrySnapshotter snapshotter({path, 1000}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  EXPECT_TRUE(snapshotter.running());
  EXPECT_FALSE(snapshotter.Start().ok());  // Already running.
  snapshotter.Stop();
  EXPECT_FALSE(snapshotter.running());
  snapshotter.Stop();  // Idempotent.
  std::remove(path.c_str());
}

TEST(TelemetrySnapshot, StopWithoutStartIsSafe) {
  MetricsRegistry registry;
  TelemetrySnapshotter snapshotter({TempPath("ts_unused.jsonl"), 100},
                                   &registry);
  snapshotter.Stop();
  EXPECT_EQ(snapshotter.samples_taken(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
