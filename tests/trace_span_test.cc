#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace churnlab {
namespace obs {
namespace {

// Trace state is process-wide; every test starts from a clean, enabled
// trace and disables it again on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Enable(true);
    Trace::Reset();
  }
  void TearDown() override {
    Trace::Enable(false);
    Trace::Reset();
  }
};

TEST_F(TraceTest, CollectRootIsSyntheticRun) {
  const ProfileNode root = Trace::Collect();
  EXPECT_EQ(root.name, "run");
  EXPECT_TRUE(root.children.empty());
}

TEST_F(TraceTest, SingleSpanAppearsUnderRoot) {
  { CHURNLAB_SPAN("unit.single"); }
  const ProfileNode root = Trace::Collect();
  const ProfileNode* span = root.Find("unit.single");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
  EXPECT_TRUE(span->children.empty());
}

TEST_F(TraceTest, RepeatedExecutionsFoldIntoOneNode) {
  for (int i = 0; i < 5; ++i) {
    CHURNLAB_SPAN("unit.repeated");
  }
  const ProfileNode root = Trace::Collect();
  const ProfileNode* span = root.Find("unit.repeated");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 5u);
  ASSERT_EQ(root.children.size(), 1u);
}

TEST_F(TraceTest, NestedSpansBuildATree) {
  {
    CHURNLAB_SPAN("unit.outer");
    {
      CHURNLAB_SPAN("unit.inner");
    }
    {
      CHURNLAB_SPAN("unit.inner");
    }
  }
  const ProfileNode root = Trace::Collect();
  const ProfileNode* outer = root.Find("unit.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const ProfileNode* inner = outer->Find("unit.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  // The inner span is keyed by path, not by name alone: it must not also
  // appear at the top level.
  EXPECT_EQ(root.Find("unit.inner"), nullptr);
}

TEST_F(TraceTest, SelfTimeExcludesChildren) {
  {
    CHURNLAB_SPAN("unit.parent");
    {
      CHURNLAB_SPAN("unit.child");
      volatile double sink = 0.0;
      for (int i = 0; i < 200000; ++i) sink = sink + static_cast<double>(i);
    }
  }
  const ProfileNode root = Trace::Collect();
  const ProfileNode* parent = root.Find("unit.parent");
  ASSERT_NE(parent, nullptr);
  const ProfileNode* child = parent->Find("unit.child");
  ASSERT_NE(child, nullptr);
  EXPECT_GE(parent->total_ns, child->total_ns);
  EXPECT_EQ(parent->self_ns, parent->total_ns - child->total_ns);
  EXPECT_EQ(child->self_ns, child->total_ns);
}

TEST_F(TraceTest, OpenSpansAreNotCounted) {
  CHURNLAB_SPAN("unit.still_open");
  const ProfileNode root = Trace::Collect();
  const ProfileNode* span = root.Find("unit.still_open");
  // Either absent or present with zero completed executions.
  if (span != nullptr) {
    EXPECT_EQ(span->count, 0u);
  }
}

TEST_F(TraceTest, DisabledTraceRecordsNothing) {
  Trace::Enable(false);
  { CHURNLAB_SPAN("unit.invisible"); }
  Trace::Enable(true);
  const ProfileNode root = Trace::Collect();
  EXPECT_EQ(root.Find("unit.invisible"), nullptr);
}

TEST_F(TraceTest, ResetZeroesCollectedSpans) {
  { CHURNLAB_SPAN("unit.reset_me"); }
  Trace::Reset();
  const ProfileNode root = Trace::Collect();
  const ProfileNode* span = root.Find("unit.reset_me");
  if (span != nullptr) {
    EXPECT_EQ(span->count, 0u);
  }
}

TEST_F(TraceTest, WorkerThreadSpansMergeUnderRoot) {
  { CHURNLAB_SPAN("unit.main_thread"); }
  std::thread worker([] {
    CHURNLAB_SPAN("unit.worker_thread");
  });
  worker.join();
  const ProfileNode root = Trace::Collect();
  // Collect() merges trees of exited threads too; the worker's span shows
  // up as a top-level child, not under the submitting span.
  EXPECT_NE(root.Find("unit.main_thread"), nullptr);
  EXPECT_NE(root.Find("unit.worker_thread"), nullptr);
}

TEST_F(TraceTest, RenderAsciiMentionsEverySpan) {
  {
    CHURNLAB_SPAN("unit.render_outer");
    { CHURNLAB_SPAN("unit.render_inner"); }
  }
  const std::string rendered = Trace::RenderAscii(Trace::Collect());
  EXPECT_NE(rendered.find("run"), std::string::npos);
  EXPECT_NE(rendered.find("unit.render_outer"), std::string::npos);
  EXPECT_NE(rendered.find("unit.render_inner"), std::string::npos);
}

TEST_F(TraceTest, RenderAsciiOfEmptyTraceIsWellFormed) {
  const std::string rendered = Trace::RenderAscii(Trace::Collect());
  EXPECT_NE(rendered.find("run"), std::string::npos);
}

TEST(ProfileNode, FindReturnsNullForUnknownChild) {
  ProfileNode node;
  node.name = "root";
  EXPECT_EQ(node.Find("missing"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
