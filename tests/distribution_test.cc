#include "eval/distribution.h"

#include <gtest/gtest.h>

#include "core/stability_model.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace eval {
namespace {

TEST(Quantile, KnownValues) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5).ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0).ValueOrDie(), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25).ValueOrDie(), 2.0);
  // Interpolation between order statistics.
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, 0.5).ValueOrDie(), 1.5);
  EXPECT_DOUBLE_EQ(Quantile({10.0}, 0.7).ValueOrDie(), 10.0);
}

TEST(Quantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Quantile({5.0, 1.0, 3.0}, 0.5).ValueOrDie(), 3.0);
}

TEST(Quantile, Errors) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

class CohortDistributionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::PaperScenarioConfig config;
    config.population.num_loyal = 120;
    config.population.num_defecting = 120;
    config.seed = 71;
    dataset_ = new retail::Dataset(
        datagen::MakePaperDataset(config).ValueOrDie());
    core::StabilityModelOptions options;
    options.significance.alpha = 2.0;
    options.window_span_months = 2;
    const auto model = core::StabilityModel::Make(options).ValueOrDie();
    scores_ = new core::ScoreMatrix(model.ScoreDataset(*dataset_).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete scores_;
    delete dataset_;
    scores_ = nullptr;
    dataset_ = nullptr;
  }

  static const retail::Dataset* dataset_;
  static const core::ScoreMatrix* scores_;
};

const retail::Dataset* CohortDistributionTest::dataset_ = nullptr;
const core::ScoreMatrix* CohortDistributionTest::scores_ = nullptr;

TEST_F(CohortDistributionTest, OnePointPerWindowPerCohort) {
  const CohortDistribution distribution =
      ComputeCohortDistribution(*dataset_, *scores_, 2).ValueOrDie();
  EXPECT_EQ(distribution.loyal.size(),
            static_cast<size_t>(scores_->num_windows()));
  EXPECT_EQ(distribution.defecting.size(), distribution.loyal.size());
  for (const CohortQuantiles& quantiles : distribution.loyal) {
    EXPECT_EQ(quantiles.count, 120u);
  }
}

TEST_F(CohortDistributionTest, QuantilesAreOrdered) {
  const CohortDistribution distribution =
      ComputeCohortDistribution(*dataset_, *scores_, 2).ValueOrDie();
  for (const auto* series : {&distribution.loyal, &distribution.defecting}) {
    for (const CohortQuantiles& quantiles : *series) {
      EXPECT_LE(quantiles.p10, quantiles.p25);
      EXPECT_LE(quantiles.p25, quantiles.median);
      EXPECT_LE(quantiles.median, quantiles.p75);
      EXPECT_LE(quantiles.p75, quantiles.p90);
    }
  }
}

TEST_F(CohortDistributionTest, CohortsSeparateAfterOnset) {
  const CohortDistribution distribution =
      ComputeCohortDistribution(*dataset_, *scores_, 2).ValueOrDie();
  // Find windows reported at months 14 (pre-onset) and 24 (post-onset).
  const auto at_month = [](const std::vector<CohortQuantiles>& series,
                           int32_t month) -> const CohortQuantiles* {
    for (const CohortQuantiles& quantiles : series) {
      if (quantiles.report_month == month) return &quantiles;
    }
    return nullptr;
  };
  const CohortQuantiles* loyal_pre = at_month(distribution.loyal, 14);
  const CohortQuantiles* defect_pre = at_month(distribution.defecting, 14);
  const CohortQuantiles* loyal_post = at_month(distribution.loyal, 24);
  const CohortQuantiles* defect_post = at_month(distribution.defecting, 24);
  ASSERT_NE(loyal_pre, nullptr);
  ASSERT_NE(defect_post, nullptr);
  // Pre-onset medians close; post-onset defecting median clearly lower.
  EXPECT_NEAR(loyal_pre->median, defect_pre->median, 0.05);
  EXPECT_GT(loyal_post->median - defect_post->median, 0.2);
}

TEST_F(CohortDistributionTest, ValidationErrors) {
  EXPECT_FALSE(ComputeCohortDistribution(*dataset_, *scores_, 0).ok());
  retail::Dataset unlabeled;
  // Same scores but a dataset with no labels at all.
  EXPECT_FALSE(ComputeCohortDistribution(unlabeled, *scores_, 2).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
