#include "retail/dataset.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace churnlab {
namespace retail {
namespace {

// A small but structurally complete dataset: taxonomy, named items, labels.
Dataset MakeTestDataset() {
  Dataset dataset;
  const DepartmentId dairy = dataset.mutable_taxonomy().AddDepartment("dairy");
  const SegmentId milk =
      dataset.mutable_taxonomy().AddSegment("milk", dairy).ValueOrDie();
  const SegmentId cheese =
      dataset.mutable_taxonomy().AddSegment("cheese", dairy).ValueOrDie();

  const ItemId whole_milk = dataset.mutable_items().GetOrAdd("whole milk");
  const ItemId skim_milk = dataset.mutable_items().GetOrAdd("skim, milk");
  const ItemId brie = dataset.mutable_items().GetOrAdd("brie \"royal\"");
  EXPECT_TRUE(dataset.mutable_taxonomy().AssignItem(whole_milk, milk).ok());
  EXPECT_TRUE(dataset.mutable_taxonomy().AssignItem(skim_milk, milk).ok());
  EXPECT_TRUE(dataset.mutable_taxonomy().AssignItem(brie, cheese).ok());

  Receipt r1;
  r1.customer = 10;
  r1.day = 3;
  r1.spend = 12.5;
  r1.items = {whole_milk, brie};
  EXPECT_TRUE(dataset.mutable_store().Append(std::move(r1)).ok());
  Receipt r2;
  r2.customer = 10;
  r2.day = 40;
  r2.spend = 4.25;
  r2.items = {skim_milk};
  EXPECT_TRUE(dataset.mutable_store().Append(std::move(r2)).ok());
  Receipt r3;
  r3.customer = 20;
  r3.day = 70;
  r3.spend = 8.0;
  r3.items = {brie};
  EXPECT_TRUE(dataset.mutable_store().Append(std::move(r3)).ok());

  dataset.SetLabel(10, {Cohort::kLoyal, -1});
  dataset.SetLabel(20, {Cohort::kDefecting, 18});
  dataset.Finalize();
  return dataset;
}

void ExpectEquivalent(const Dataset& a, const Dataset& b) {
  const DatasetStats sa = a.ComputeStats();
  const DatasetStats sb = b.ComputeStats();
  EXPECT_EQ(sa.num_customers, sb.num_customers);
  EXPECT_EQ(sa.num_receipts, sb.num_receipts);
  EXPECT_EQ(sa.num_distinct_items, sb.num_distinct_items);
  EXPECT_EQ(sa.num_segments, sb.num_segments);
  EXPECT_EQ(sa.num_departments, sb.num_departments);
  EXPECT_EQ(sa.min_day, sb.min_day);
  EXPECT_EQ(sa.max_day, sb.max_day);
  EXPECT_EQ(sa.num_loyal, sb.num_loyal);
  EXPECT_EQ(sa.num_defecting, sb.num_defecting);
  EXPECT_NEAR(sa.avg_spend_per_receipt, sb.avg_spend_per_receipt, 0.01);

  // Per-receipt comparison by item *names* (ids may be permuted by
  // serialization order).
  ASSERT_EQ(a.store().Customers(), b.store().Customers());
  for (const CustomerId customer : a.store().Customers()) {
    const auto ha = a.store().History(customer);
    const auto hb = b.store().History(customer);
    ASSERT_EQ(ha.size(), hb.size());
    for (size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].day, hb[i].day);
      ASSERT_EQ(ha[i].items.size(), hb[i].items.size());
      std::vector<std::string> names_a, names_b;
      for (const ItemId item : ha[i].items) {
        names_a.push_back(a.items().NameOrPlaceholder(item));
      }
      for (const ItemId item : hb[i].items) {
        names_b.push_back(b.items().NameOrPlaceholder(item));
      }
      std::sort(names_a.begin(), names_a.end());
      std::sort(names_b.begin(), names_b.end());
      EXPECT_EQ(names_a, names_b);
    }
    EXPECT_EQ(a.LabelOf(customer).cohort, b.LabelOf(customer).cohort);
    EXPECT_EQ(a.LabelOf(customer).attrition_onset_month,
              b.LabelOf(customer).attrition_onset_month);
  }
}

TEST(Dataset, LabelsDefaultToUnlabeled) {
  Dataset dataset;
  EXPECT_EQ(dataset.LabelOf(5).cohort, Cohort::kUnlabeled);
  EXPECT_EQ(dataset.LabelOf(5).attrition_onset_month, -1);
}

TEST(Dataset, SetLabelOverwrites) {
  Dataset dataset;
  dataset.SetLabel(1, {Cohort::kLoyal, -1});
  dataset.SetLabel(1, {Cohort::kDefecting, 12});
  EXPECT_EQ(dataset.LabelOf(1).cohort, Cohort::kDefecting);
  EXPECT_EQ(dataset.LabelOf(1).attrition_onset_month, 12);
}

TEST(Dataset, CustomersWithCohortSorted) {
  Dataset dataset;
  dataset.SetLabel(9, {Cohort::kDefecting, 1});
  dataset.SetLabel(2, {Cohort::kDefecting, 2});
  dataset.SetLabel(5, {Cohort::kLoyal, -1});
  EXPECT_EQ(dataset.CustomersWithCohort(Cohort::kDefecting),
            (std::vector<CustomerId>{2, 9}));
  EXPECT_EQ(dataset.CustomersWithCohort(Cohort::kLoyal),
            (std::vector<CustomerId>{5}));
  EXPECT_TRUE(dataset.CustomersWithCohort(Cohort::kUnlabeled).empty());
}

TEST(Dataset, ComputeStats) {
  const Dataset dataset = MakeTestDataset();
  const DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.num_customers, 2u);
  EXPECT_EQ(stats.num_receipts, 3u);
  EXPECT_EQ(stats.num_distinct_items, 3u);
  EXPECT_EQ(stats.num_segments, 2u);
  EXPECT_EQ(stats.num_departments, 1u);
  EXPECT_EQ(stats.min_day, 3);
  EXPECT_EQ(stats.max_day, 70);
  EXPECT_EQ(stats.num_months, 3);  // months 0..2
  EXPECT_NEAR(stats.avg_basket_size, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.avg_receipts_per_customer, 1.5, 1e-9);
  EXPECT_NEAR(stats.avg_spend_per_receipt, (12.5 + 4.25 + 8.0) / 3.0, 1e-9);
  EXPECT_EQ(stats.num_loyal, 1u);
  EXPECT_EQ(stats.num_defecting, 1u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset original = MakeTestDataset();
  const std::string prefix = testing::TempDir() + "/churnlab_dataset_csv";
  ASSERT_TRUE(original.SaveCsv(prefix).ok());
  const auto loaded = Dataset::LoadCsv(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(original, loaded.ValueOrDie());
  std::remove((prefix + ".receipts.csv").c_str());
  std::remove((prefix + ".taxonomy.csv").c_str());
  std::remove((prefix + ".labels.csv").c_str());
}

TEST(Dataset, BinaryRoundTrip) {
  const Dataset original = MakeTestDataset();
  const std::string path = testing::TempDir() + "/churnlab_dataset.clb";
  ASSERT_TRUE(original.SaveBinary(path).ok());
  const auto loaded = Dataset::LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(original, loaded.ValueOrDie());
  std::remove(path.c_str());
}

TEST(Dataset, LoadBinaryRejectsGarbage) {
  const std::string path = testing::TempDir() + "/churnlab_garbage.clb";
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    std::fputs("not a dataset", file);
    std::fclose(file);
  }
  EXPECT_FALSE(Dataset::LoadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(Dataset, LoadCsvMissingFilesFails) {
  EXPECT_TRUE(
      Dataset::LoadCsv("/nonexistent/prefix").status().IsIOError());
}

TEST(CohortStrings, RoundTrip) {
  EXPECT_EQ(CohortFromString(CohortToString(Cohort::kLoyal)).ValueOrDie(),
            Cohort::kLoyal);
  EXPECT_EQ(CohortFromString(CohortToString(Cohort::kDefecting)).ValueOrDie(),
            Cohort::kDefecting);
  EXPECT_EQ(CohortFromString(CohortToString(Cohort::kUnlabeled)).ValueOrDie(),
            Cohort::kUnlabeled);
  EXPECT_TRUE(CohortFromString("bogus").status().IsInvalidArgument());
}

TEST(DayMonthConversions, Basics) {
  EXPECT_EQ(DayToMonth(0), 0);
  EXPECT_EQ(DayToMonth(29), 0);
  EXPECT_EQ(DayToMonth(30), 1);
  EXPECT_EQ(DayToMonth(59), 1);
  EXPECT_EQ(MonthToFirstDay(0), 0);
  EXPECT_EQ(MonthToFirstDay(18), 540);
  EXPECT_EQ(DayToMonth(MonthToFirstDay(7)), 7);
  EXPECT_EQ(DayToMonth(-1), -1);
  EXPECT_EQ(DayToMonth(-30), -1);
  EXPECT_EQ(DayToMonth(-31), -2);
}

}  // namespace
}  // namespace retail
}  // namespace churnlab
