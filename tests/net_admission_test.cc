// Admission control, route dispatch, and the shared status->HTTP mapping.
// These are the pieces that decide whether a request is processed at all,
// so the bounds and the taxonomy must hold exactly.

#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/admission.h"
#include "net/router.h"
#include "net/status_http.h"

namespace churnlab {
namespace net {
namespace {

AdmissionGate::Options SmallGate(size_t inflight, size_t bytes) {
  AdmissionGate::Options options;
  options.max_inflight_requests = inflight;
  options.max_pending_bytes = bytes;
  return options;
}

TEST(AdmissionGate, AdmitsWithinBounds) {
  AdmissionGate gate(SmallGate(2, 100));
  Result<AdmissionGate::Ticket> first = gate.Admit(40);
  Result<AdmissionGate::Ticket> second = gate.Admit(40);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->admitted());
  EXPECT_EQ(gate.inflight(), 2u);
  EXPECT_EQ(gate.pending_bytes(), 80u);
}

TEST(AdmissionGate, ShedsBeyondInflightBound) {
  AdmissionGate gate(SmallGate(1, 1000));
  Result<AdmissionGate::Ticket> first = gate.Admit(1);
  ASSERT_TRUE(first.ok());
  const Result<AdmissionGate::Ticket> second = gate.Admit(1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted)
      << second.status().ToString();
}

TEST(AdmissionGate, ShedsBeyondByteBound) {
  AdmissionGate gate(SmallGate(10, 100));
  Result<AdmissionGate::Ticket> first = gate.Admit(60);
  ASSERT_TRUE(first.ok());
  const Result<AdmissionGate::Ticket> second = gate.Admit(60);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // A request that still fits is admitted — the bound is on the sum.
  EXPECT_TRUE(gate.Admit(40).ok());
}

TEST(AdmissionGate, TicketReleasesOnDestruction) {
  AdmissionGate gate(SmallGate(1, 100));
  {
    Result<AdmissionGate::Ticket> ticket = gate.Admit(50);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(gate.inflight(), 1u);
    EXPECT_EQ(gate.pending_bytes(), 50u);
  }
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_EQ(gate.pending_bytes(), 0u);
  EXPECT_TRUE(gate.Admit(100).ok());
}

TEST(AdmissionGate, MovedFromTicketReleasesOnlyOnce) {
  AdmissionGate gate(SmallGate(4, 1000));
  Result<AdmissionGate::Ticket> admitted = gate.Admit(10);
  ASSERT_TRUE(admitted.ok());
  AdmissionGate::Ticket moved = std::move(*admitted);
  EXPECT_TRUE(moved.admitted());
  EXPECT_EQ(gate.inflight(), 1u);
  {
    AdmissionGate::Ticket inner = std::move(moved);
    EXPECT_FALSE(moved.admitted());  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(gate.inflight(), 1u);
  }
  EXPECT_EQ(gate.inflight(), 0u);
}

TEST(AdmissionGate, ConcurrentAdmitsNeverExceedBounds) {
  AdmissionGate gate(SmallGate(8, 8 * 64));
  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&gate] {
      for (int i = 0; i < 500; ++i) {
        Result<AdmissionGate::Ticket> ticket = gate.Admit(64);
        if (ticket.ok()) {
          EXPECT_LE(gate.inflight(), 8u);
          EXPECT_LE(gate.pending_bytes(), 8u * 64u);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_EQ(gate.pending_bytes(), 0u);
}

TEST(StatusToHttp, CoversTheWholeTaxonomy) {
  const std::pair<StatusCode, int> expected[] = {
      {StatusCode::kOk, 200},
      {StatusCode::kInvalidArgument, 400},
      {StatusCode::kNotFound, 404},
      {StatusCode::kAlreadyExists, 409},
      {StatusCode::kFailedPrecondition, 409},
      {StatusCode::kOutOfRange, 413},
      {StatusCode::kResourceExhausted, 429},
      {StatusCode::kNotImplemented, 501},
      {StatusCode::kCancelled, 503},
      {StatusCode::kIOError, 500},
      {StatusCode::kInternal, 500},
  };
  for (const auto& [code, http] : expected) {
    EXPECT_EQ(StatusCodeToHttp(code), http)
        << StatusCodeToString(code) << " should map to " << http;
  }
  EXPECT_EQ(StatusToHttp(Status::OK()), 200);
  EXPECT_EQ(StatusToHttp(Status::NotFound("x")), 404);
}

TEST(HttpReasonPhrase, KnownPhrases) {
  EXPECT_EQ(HttpReasonPhrase(200), "OK");
  EXPECT_EQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_EQ(HttpReasonPhrase(429), "Too Many Requests");
  EXPECT_EQ(HttpReasonPhrase(503), "Service Unavailable");
}

HttpRequest MakeRequest(std::string method, std::string path) {
  HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  request.target = request.path;
  return request;
}

TEST(Router, DispatchesLiteralAndPlaceholderRoutes) {
  Router router;
  router.Add("GET", "/v1/health",
             [](const HttpRequest&, const std::vector<std::string>&) {
               HttpResponse response;
               response.body = "health";
               return response;
             });
  router.Add("GET", "/v1/customers/{id}",
             [](const HttpRequest&, const std::vector<std::string>& params) {
               HttpResponse response;
               response.body = "customer:" + params.at(0);
               return response;
             });
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/v1/health")).body, "health");
  const HttpResponse customer =
      router.Dispatch(MakeRequest("GET", "/v1/customers/42"));
  EXPECT_EQ(customer.status_code, 200);
  EXPECT_EQ(customer.body, "customer:42");
}

TEST(Router, UnknownPathIs404WithErrorBody) {
  Router router;
  router.Add("GET", "/v1/health",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse{};
             });
  const HttpResponse response =
      router.Dispatch(MakeRequest("GET", "/nope"));
  EXPECT_EQ(response.status_code, 404);
  EXPECT_NE(response.body.find("\"error\""), std::string::npos)
      << response.body;
}

TEST(Router, WrongMethodIs405WithAllowHeader) {
  Router router;
  router.Add("GET", "/v1/health",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse{};
             });
  router.Add("POST", "/v1/health",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse{};
             });
  const HttpResponse response =
      router.Dispatch(MakeRequest("DELETE", "/v1/health"));
  EXPECT_EQ(response.status_code, 405);
  bool has_allow = false;
  for (const auto& [name, value] : response.headers) {
    if (name == "Allow") {
      has_allow = true;
      EXPECT_NE(value.find("GET"), std::string::npos) << value;
      EXPECT_NE(value.find("POST"), std::string::npos) << value;
    }
  }
  EXPECT_TRUE(has_allow);
}

TEST(Router, PlaceholderMatchesExactlyOneSegment) {
  Router router;
  router.Add("GET", "/v1/customers/{id}",
             [](const HttpRequest&, const std::vector<std::string>&) {
               return HttpResponse{};
             });
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/v1/customers")).status_code,
            404);
  EXPECT_EQ(
      router.Dispatch(MakeRequest("GET", "/v1/customers/1/extra")).status_code,
      404);
  EXPECT_EQ(router.Dispatch(MakeRequest("GET", "/v1/customers/1")).status_code,
            200);
}

}  // namespace
}  // namespace net
}  // namespace churnlab
