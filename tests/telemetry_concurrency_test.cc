// Concurrency tests for the telemetry layer, written to run under
// ThreadSanitizer (scripts/check_sanitizers.sh): registry export while
// worker threads record, flight-recorder collection while rings are being
// overwritten, and the snapshotter sampling a registry under load.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/snapshot.h"

namespace churnlab {
namespace obs {
namespace {

constexpr int kWriterThreads = 4;
constexpr int kOpsPerWriter = 20000;

TEST(TelemetryConcurrency, ExportWhileWorkersRecord) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Mix of a shared counter, per-thread labeled metrics, and a shared
      // histogram: exercises both map lookup and lock-free recording.
      Counter* shared = registry.GetCounter("hammer.shared");
      Histogram* latency = registry.GetHistogram("hammer.lat_us");
      const std::string labeled = LabeledMetricName(
          "hammer.per_thread", {{"thread", std::to_string(t)}});
      for (int i = 0; i < kOpsPerWriter; ++i) {
        shared->Increment();
        registry.GetCounter(labeled)->Increment();
        registry.GetGauge("hammer.gauge")->Set(static_cast<double>(i));
        latency->Record(static_cast<double>(i % 1000));
      }
    });
  }

  std::thread exporter([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      const std::string prometheus = ExportPrometheus(snapshot);
      EXPECT_FALSE(prometheus.empty());
      const std::string telemetry =
          JsonExporter::ExportTelemetry(snapshot, nullptr);
      EXPECT_TRUE(ParseJson(telemetry).ok());
    }
  });

  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  const uint64_t expected =
      static_cast<uint64_t>(kWriterThreads) * kOpsPerWriter;
  EXPECT_EQ(registry.GetCounter("hammer.shared")->Value(), expected);
  EXPECT_EQ(registry.GetHistogram("hammer.lat_us")->Snapshot().count,
            expected);
}

TEST(TelemetryConcurrency, CollectWhileRingsOverwrite) {
  FlightRecorder::ResetForTest();
  FlightRecorder::Arm(FlightRecorder::Options{/*events_per_thread=*/256});
  const uint32_t site = FlightRecorder::RegisterSite("hammer.flight");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([site, t] {
      FlightRecorder::LabelThread("hammer-" + std::to_string(t));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        FlightRecorder::Record(site, static_cast<uint64_t>(i),
                               static_cast<uint64_t>(t));
      }
    });
  }

  std::thread collector([site, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Torn slots must be skipped, never decoded: every event we do see
      // carries a plausible payload.
      for (const FlightEvent& event : FlightRecorder::Collect()) {
        if (event.site != site) continue;
        EXPECT_LT(event.key, static_cast<uint64_t>(kOpsPerWriter));
        EXPECT_LT(event.duration_ns,
                  static_cast<uint64_t>(kWriterThreads));
      }
    }
  });

  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  collector.join();

  EXPECT_GE(FlightRecorder::TotalRecorded(),
            static_cast<uint64_t>(kWriterThreads) * kOpsPerWriter);
  FlightRecorder::Disarm();
  FlightRecorder::ResetForTest();
}

TEST(TelemetryConcurrency, SnapshotterSamplesUnderLoad) {
  MetricsRegistry registry;
  const std::string path =
      testing::TempDir() + "ts_concurrency.jsonl";
  TelemetrySnapshotter snapshotter({path, /*interval_ms=*/10}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("hammer.sampled");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Increment();
        if (i % 256 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  snapshotter.Stop();
  EXPECT_GE(snapshotter.samples_taken(), 1u);

  // The file must be well-formed JSONL with the final total visible in the
  // last sample.
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  size_t begin = 0;
  std::string last_line;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    if (!line.empty()) {
      EXPECT_TRUE(ParseJson(line).ok()) << line;
      last_line = line;
    }
    begin = end + 1;
  }
  auto parsed = ParseJson(last_line);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* entry = parsed->Find("counters")->Find("hammer.sampled");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("total")->number,
            static_cast<double>(kWriterThreads) * kOpsPerWriter);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
