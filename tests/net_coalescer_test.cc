// Ingest coalescing: concurrent requests must merge into backend batches
// whose concatenation is exactly the arrival-sequence order, with each
// request getting back precisely its own slice of the merged report. This
// is the property the server's byte-identical-replay guarantee rests on.

#include "net/coalescer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/backend.h"

namespace churnlab {
namespace net {
namespace {

// Records every batch the coalescer hands to the backend. The coalescer
// contractually serializes Ingest calls (leader-based), so no internal
// locking is needed; an atomic flag asserts that contract instead.
class RecordingBackend final : public ScoringBackend {
 public:
  Result<serve::BatchReport> Ingest(
      uint64_t first_sequence,
      std::span<const retail::Receipt> receipts) override {
    EXPECT_FALSE(ingest_active_.exchange(true))
        << "backend Ingest reentered concurrently";
    batch_sequences_.push_back(first_sequence);
    batches_.emplace_back(receipts.begin(), receipts.end());
    serve::BatchReport report;
    report.receipts_ingested = receipts.size();
    // Tag every receipt position with an alert so slice demultiplexing is
    // observable: each request must get back alerts for exactly its own
    // receipts, rebased to its own indices.
    for (size_t i = 0; i < receipts.size(); ++i) {
      serve::FleetAlert alert;
      alert.customer = receipts[i].customer;
      alert.batch_index = i;
      report.alerts.push_back(alert);
    }
    ingest_active_.store(false);
    return report;
  }

  Result<serve::CustomerQuery> Customer(retail::CustomerId customer) override {
    serve::CustomerQuery query;
    query.customer = customer;
    return query;
  }
  Result<serve::FleetHealth> Health() override {
    return serve::FleetHealth{};
  }
  Result<serve::StateMemoryStats> Memory() override {
    return serve::StateMemoryStats{};
  }
  Result<std::string> Snapshot() override { return std::string("unused"); }

  const std::vector<std::vector<retail::Receipt>>& batches() const {
    return batches_;
  }
  /// First-sequence tag of each backend batch, in call order.
  const std::vector<uint64_t>& batch_sequences() const {
    return batch_sequences_;
  }
  std::vector<retail::Receipt> Concatenated() const {
    std::vector<retail::Receipt> all;
    for (const auto& batch : batches_) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  }

 private:
  std::vector<std::vector<retail::Receipt>> batches_;
  std::vector<uint64_t> batch_sequences_;
  std::atomic<bool> ingest_active_{false};
};

retail::Receipt MakeReceipt(retail::CustomerId customer, retail::Day day) {
  retail::Receipt receipt;
  receipt.customer = customer;
  receipt.day = day;
  return receipt;
}

TEST(IngestCoalescer, SingleRequestPassesThrough) {
  RecordingBackend backend;
  IngestCoalescer coalescer(IngestCoalescer::Options{}, &backend);
  const Result<IngestCoalescer::Outcome> outcome =
      coalescer.Ingest({MakeReceipt(1, 10), MakeReceipt(2, 10)});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->first_sequence, 0u);
  EXPECT_EQ(outcome->report.receipts_ingested, 2u);
  ASSERT_EQ(backend.batches().size(), 1u);
  EXPECT_EQ(backend.batches()[0].size(), 2u);
  EXPECT_EQ(coalescer.pending_receipts(), 0u);
}

TEST(IngestCoalescer, EmptyRequestIsCheapNoOp) {
  RecordingBackend backend;
  IngestCoalescer coalescer(IngestCoalescer::Options{}, &backend);
  const Result<IngestCoalescer::Outcome> outcome = coalescer.Ingest({});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->report.receipts_ingested, 0u);
  EXPECT_TRUE(backend.batches().empty());
}

TEST(IngestCoalescer, SequencesAreContiguousPerRequest) {
  RecordingBackend backend;
  IngestCoalescer coalescer(IngestCoalescer::Options{}, &backend);
  const Result<IngestCoalescer::Outcome> first =
      coalescer.Ingest({MakeReceipt(1, 1), MakeReceipt(1, 2)});
  const Result<IngestCoalescer::Outcome> second =
      coalescer.Ingest({MakeReceipt(2, 1)});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->first_sequence, 0u);
  EXPECT_EQ(second->first_sequence, 2u);
}

TEST(IngestCoalescer, ConcurrentRequestsMergeWithoutLossOrReorder) {
  RecordingBackend backend;
  IngestCoalescer::Options options;
  options.max_batch_receipts = 64;  // force multiple rounds
  IngestCoalescer coalescer(options, &backend);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  constexpr int kReceiptsPerRequest = 5;

  struct RequestRecord {
    uint64_t first_sequence = 0;
    std::vector<retail::Receipt> receipts;
    size_t reported_ingested = 0;
    std::vector<size_t> alert_indices;
  };
  std::vector<std::vector<RequestRecord>> records(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        std::vector<retail::Receipt> receipts;
        receipts.reserve(kReceiptsPerRequest);
        for (int i = 0; i < kReceiptsPerRequest; ++i) {
          // Distinct customer per (thread, request, position) so receipts
          // are globally identifiable.
          const auto customer = static_cast<retail::CustomerId>(
              t * 1000000 + r * 100 + i);
          receipts.push_back(MakeReceipt(customer, 1));
        }
        Result<IngestCoalescer::Outcome> outcome =
            coalescer.Ingest(receipts);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        RequestRecord record;
        record.first_sequence = outcome->first_sequence;
        record.receipts = std::move(receipts);
        record.reported_ingested = outcome->report.receipts_ingested;
        for (const serve::FleetAlert& alert : outcome->report.alerts) {
          record.alert_indices.push_back(alert.batch_index);
        }
        records[t].push_back(std::move(record));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Reconstruct the arrival order from the per-request sequence numbers.
  std::map<uint64_t, const RequestRecord*> by_sequence;
  size_t total_receipts = 0;
  for (const auto& thread_records : records) {
    for (const RequestRecord& record : thread_records) {
      EXPECT_EQ(record.reported_ingested, record.receipts.size());
      // The demultiplexed slice covers exactly this request's receipts,
      // rebased to local indices 0..n-1.
      ASSERT_EQ(record.alert_indices.size(), record.receipts.size());
      for (size_t i = 0; i < record.alert_indices.size(); ++i) {
        EXPECT_EQ(record.alert_indices[i], i);
      }
      EXPECT_TRUE(by_sequence.emplace(record.first_sequence, &record).second)
          << "duplicate first_sequence " << record.first_sequence;
      total_receipts += record.receipts.size();
    }
  }

  // Sequences tile [0, total) contiguously: request k starts where k-1
  // ended.
  uint64_t expected_sequence = 0;
  std::vector<retail::Receipt> arrival_order;
  arrival_order.reserve(total_receipts);
  for (const auto& [sequence, record] : by_sequence) {
    EXPECT_EQ(sequence, expected_sequence);
    expected_sequence += record->receipts.size();
    arrival_order.insert(arrival_order.end(), record->receipts.begin(),
                         record->receipts.end());
  }
  EXPECT_EQ(expected_sequence, total_receipts);

  // The backend saw exactly the arrival order, merely cut into rounds.
  const std::vector<retail::Receipt> ingested = backend.Concatenated();
  ASSERT_EQ(ingested.size(), total_receipts);
  for (size_t i = 0; i < total_receipts; ++i) {
    EXPECT_EQ(ingested[i].customer, arrival_order[i].customer) << "at " << i;
  }
  for (const auto& batch : backend.batches()) {
    EXPECT_LE(batch.size(), options.max_batch_receipts);
  }
  EXPECT_EQ(coalescer.pending_receipts(), 0u);
}

TEST(IngestCoalescer, OversizedQueueShedsWithResourceExhausted) {
  RecordingBackend backend;
  IngestCoalescer::Options options;
  options.max_queue_receipts = 4;
  IngestCoalescer coalescer(options, &backend);
  // A single request larger than the whole queue bound is rejected before
  // any sequence is assigned or any receipt buffered.
  std::vector<retail::Receipt> oversized;
  for (int i = 0; i < 5; ++i) oversized.push_back(MakeReceipt(1, 1));
  const Result<IngestCoalescer::Outcome> outcome =
      coalescer.Ingest(std::move(oversized));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted)
      << outcome.status().ToString();
  EXPECT_EQ(coalescer.pending_receipts(), 0u);
  EXPECT_TRUE(backend.batches().empty());
  // The next in-bounds request still starts at sequence 0: shed requests
  // never consume sequence numbers.
  const Result<IngestCoalescer::Outcome> ok_outcome =
      coalescer.Ingest({MakeReceipt(1, 1)});
  ASSERT_TRUE(ok_outcome.ok());
  EXPECT_EQ(ok_outcome->first_sequence, 0u);
}

TEST(IngestCoalescer, BackendBatchesCarryContiguousFirstSequences) {
  RecordingBackend backend;
  IngestCoalescer coalescer(IngestCoalescer::Options{}, &backend);
  ASSERT_TRUE(coalescer.Ingest({MakeReceipt(1, 1), MakeReceipt(2, 1)}).ok());
  ASSERT_TRUE(coalescer.Ingest({MakeReceipt(3, 2)}).ok());
  ASSERT_TRUE(coalescer.Ingest({MakeReceipt(4, 3), MakeReceipt(5, 3),
                                MakeReceipt(6, 3)}).ok());
  // Each backend batch's tag is the sequence of its first receipt; across
  // batches the tags cover the receipt stream with no gap or overlap —
  // the property the write-ahead journal's contiguity check rides on.
  uint64_t expected = 0;
  ASSERT_EQ(backend.batch_sequences().size(), backend.batches().size());
  for (size_t i = 0; i < backend.batches().size(); ++i) {
    EXPECT_EQ(backend.batch_sequences()[i], expected);
    expected += backend.batches()[i].size();
  }
  EXPECT_EQ(expected, 6u);
}

TEST(IngestCoalescer, FirstSequenceOptionSeedsTheNumbering) {
  // A recovered server continues the crashed server's sequence space: the
  // coalescer starts numbering at the journal's recovered next sequence.
  RecordingBackend backend;
  IngestCoalescer::Options options;
  options.first_sequence = 1000;
  IngestCoalescer coalescer(options, &backend);
  const Result<IngestCoalescer::Outcome> first =
      coalescer.Ingest({MakeReceipt(1, 1), MakeReceipt(2, 1)});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->first_sequence, 1000u);
  const Result<IngestCoalescer::Outcome> second =
      coalescer.Ingest({MakeReceipt(3, 2)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->first_sequence, 1002u);
  ASSERT_FALSE(backend.batch_sequences().empty());
  EXPECT_EQ(backend.batch_sequences().front(), 1000u);
}

}  // namespace
}  // namespace net
}  // namespace churnlab
