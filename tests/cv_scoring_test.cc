#include "rfm/cv_scoring.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace churnlab {
namespace rfm {
namespace {

// Separable 1-D data: feature > 0 <=> target 1.
void MakeData(size_t n, std::vector<std::vector<double>>* design,
              std::vector<int>* targets, std::vector<size_t>* rows,
              size_t row_offset = 0) {
  Rng rng(11);
  design->clear();
  targets->clear();
  rows->clear();
  for (size_t i = 0; i < n; ++i) {
    const int target = i % 2 == 0 ? 1 : 0;
    design->push_back({target == 1 ? rng.UniformDouble(0.5, 1.5)
                                   : rng.UniformDouble(-1.5, -0.5)});
    targets->push_back(target);
    rows->push_back(row_offset + i);
  }
}

TEST(ScoreWindowWithCv, OutOfFoldScoresSeparateClasses) {
  std::vector<std::vector<double>> design;
  std::vector<int> targets;
  std::vector<size_t> rows;
  MakeData(40, &design, &targets, &rows);
  std::vector<retail::CustomerId> customers(40);
  for (size_t i = 0; i < 40; ++i) customers[i] = static_cast<uint32_t>(i);
  core::ScoreMatrix matrix(customers, 1);

  ASSERT_TRUE(ScoreWindowWithCv(design, targets, rows, {}, {},
                                LogisticRegressionOptions{}, 5, 1,
                                /*cross_validate=*/true, 0, &matrix)
                  .ok());
  for (size_t i = 0; i < 40; ++i) {
    if (targets[i] == 1) {
      EXPECT_GT(matrix.At(rows[i], 0), 0.5);
    } else {
      EXPECT_LT(matrix.At(rows[i], 0), 0.5);
    }
  }
}

TEST(ScoreWindowWithCv, UnlabelledRowsScoredByFullModel) {
  std::vector<std::vector<double>> design;
  std::vector<int> targets;
  std::vector<size_t> rows;
  MakeData(20, &design, &targets, &rows);
  std::vector<retail::CustomerId> customers(22);
  for (size_t i = 0; i < 22; ++i) customers[i] = static_cast<uint32_t>(i);
  core::ScoreMatrix matrix(customers, 1);

  const std::vector<std::vector<double>> unlabelled_design = {{1.0}, {-1.0}};
  const std::vector<size_t> unlabelled_rows = {20, 21};
  ASSERT_TRUE(ScoreWindowWithCv(design, targets, rows, unlabelled_design,
                                unlabelled_rows, LogisticRegressionOptions{},
                                5, 1, true, 0, &matrix)
                  .ok());
  EXPECT_GT(matrix.At(20, 0), 0.5);  // positive-side feature
  EXPECT_LT(matrix.At(21, 0), 0.5);
}

TEST(ScoreWindowWithCv, InSampleFallback) {
  std::vector<std::vector<double>> design;
  std::vector<int> targets;
  std::vector<size_t> rows;
  MakeData(6, &design, &targets, &rows);
  std::vector<retail::CustomerId> customers(6);
  for (size_t i = 0; i < 6; ++i) customers[i] = static_cast<uint32_t>(i);
  core::ScoreMatrix matrix(customers, 1);
  ASSERT_TRUE(ScoreWindowWithCv(design, targets, rows, {}, {},
                                LogisticRegressionOptions{}, 5, 1,
                                /*cross_validate=*/false, 0, &matrix)
                  .ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(matrix.At(rows[i], 0) > 0.5, targets[i] == 1);
  }
}

TEST(ScoreWindowWithCv, ValidationErrors) {
  std::vector<retail::CustomerId> customers = {0, 1};
  core::ScoreMatrix matrix(customers, 1);
  // Empty labelled set.
  EXPECT_FALSE(ScoreWindowWithCv({}, {}, {}, {}, {},
                                 LogisticRegressionOptions{}, 5, 1, false, 0,
                                 &matrix)
                   .ok());
  // Mismatched sizes.
  EXPECT_FALSE(ScoreWindowWithCv({{1.0}}, {1, 0}, {0}, {}, {},
                                 LogisticRegressionOptions{}, 5, 1, false, 0,
                                 &matrix)
                   .ok());
  EXPECT_FALSE(ScoreWindowWithCv({{1.0}}, {1}, {0}, {{1.0}}, {},
                                 LogisticRegressionOptions{}, 5, 1, false, 0,
                                 &matrix)
                   .ok());
}

}  // namespace
}  // namespace rfm
}  // namespace churnlab
