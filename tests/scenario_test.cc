#include "datagen/scenario.h"

#include <set>

#include <gtest/gtest.h>

#include "core/stability_model.h"

namespace churnlab {
namespace datagen {
namespace {

PaperScenarioConfig TinyPaperConfig() {
  PaperScenarioConfig config;
  config.population.num_loyal = 30;
  config.population.num_defecting = 30;
  config.seed = 5;
  return config;
}

TEST(PaperScenario, ShapeMatchesPaperSetting) {
  const retail::Dataset dataset =
      MakePaperDataset(TinyPaperConfig()).ValueOrDie();
  const retail::DatasetStats stats = dataset.ComputeStats();
  EXPECT_EQ(stats.num_customers, 60u);
  EXPECT_EQ(stats.num_months, 28);
  EXPECT_EQ(stats.num_loyal, 30u);
  EXPECT_EQ(stats.num_defecting, 30u);
  EXPECT_GT(stats.num_receipts, 1000u);
  EXPECT_GT(stats.avg_basket_size, 3.0);
}

TEST(PaperScenario, DeterministicBySeed) {
  const retail::Dataset a = MakePaperDataset(TinyPaperConfig()).ValueOrDie();
  const retail::Dataset b = MakePaperDataset(TinyPaperConfig()).ValueOrDie();
  EXPECT_EQ(a.store().num_receipts(), b.store().num_receipts());
  PaperScenarioConfig other = TinyPaperConfig();
  other.seed = 6;
  const retail::Dataset c = MakePaperDataset(other).ValueOrDie();
  EXPECT_NE(a.store().num_receipts(), c.store().num_receipts());
}

TEST(PaperScenario, DefectorOnsetsNearConfiguredMonth) {
  PaperScenarioConfig config = TinyPaperConfig();
  config.population.attrition.onset_month = 18;
  config.population.attrition.onset_jitter_months = 1;
  const retail::Dataset dataset = MakePaperDataset(config).ValueOrDie();
  for (const retail::CustomerId customer :
       dataset.CustomersWithCohort(retail::Cohort::kDefecting)) {
    const int32_t onset = dataset.LabelOf(customer).attrition_onset_month;
    EXPECT_GE(onset, 17);
    EXPECT_LE(onset, 19);
  }
}

TEST(PaperScenario, OutputExposesConsistentGroundTruth) {
  const PaperScenarioOutput output =
      MakePaperScenario(TinyPaperConfig()).ValueOrDie();
  EXPECT_EQ(output.profiles.size(), 60u);
  EXPECT_EQ(output.dataset.store().num_customers(), 60u);
  // Profiles and dataset labels agree.
  for (const CustomerProfile& profile : output.profiles) {
    const retail::CustomerLabel label =
        output.dataset.LabelOf(profile.customer);
    EXPECT_EQ(label.cohort, profile.cohort);
    EXPECT_EQ(label.attrition_onset_month, profile.attrition_onset_month);
  }
  // The market matches the dataset's catalogue.
  EXPECT_EQ(output.market.num_products(), output.dataset.items().size());
  EXPECT_EQ(output.market.num_segments(),
            output.dataset.taxonomy().num_segments());
  // And the dataset is identical to the plain MakePaperDataset one.
  const retail::Dataset direct =
      MakePaperDataset(TinyPaperConfig()).ValueOrDie();
  EXPECT_EQ(direct.store().num_receipts(),
            output.dataset.store().num_receipts());
}

TEST(Figure2Scenario, ScriptedCustomerExistsWithSteadyBasket) {
  const Figure2Scenario scenario = MakeFigure2Scenario().ValueOrDie();
  EXPECT_FALSE(scenario.dataset.store()
                   .History(scenario.customer)
                   .empty());
  EXPECT_EQ(scenario.dataset.LabelOf(scenario.customer).cohort,
            retail::Cohort::kDefecting);
}

TEST(Figure2Scenario, CoffeeAndDairyLossesAreVisibleInStability) {
  Figure2ScenarioConfig config;
  const Figure2Scenario scenario = MakeFigure2Scenario(config).ValueOrDie();

  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const auto report =
      model.AnalyzeCustomer(scenario.dataset, scenario.customer).ValueOrDie();

  // Locate the windows whose end months are 20 and 22 (the figure's
  // annotated drops, given losses at months 18 and 20).
  const core::CustomerWindowReport* coffee_window = nullptr;
  const core::CustomerWindowReport* dairy_window = nullptr;
  for (const core::CustomerWindowReport& window : report.windows) {
    if (window.end_month == 20) coffee_window = &window;
    if (window.end_month == 22) dairy_window = &window;
  }
  ASSERT_NE(coffee_window, nullptr);
  ASSERT_NE(dairy_window, nullptr);

  EXPECT_GT(coffee_window->drop_from_previous, 0.02);
  EXPECT_GT(dairy_window->drop_from_previous,
            coffee_window->drop_from_previous);  // "sharper" decrease

  const auto newly_missing_names =
      [](const core::CustomerWindowReport& window) {
        std::set<std::string> names;
        for (const core::NamedMissingProduct& missing : window.missing) {
          if (missing.newly_missing) names.insert(missing.name);
        }
        return names;
      };
  EXPECT_TRUE(newly_missing_names(*coffee_window).count("coffee"));
  const auto dairy_names = newly_missing_names(*dairy_window);
  EXPECT_TRUE(dairy_names.count("milk"));
  EXPECT_TRUE(dairy_names.count("sponge"));
  EXPECT_TRUE(dairy_names.count("cheese"));
}

TEST(Figure2Scenario, StabilityHighBeforeLosses) {
  const Figure2Scenario scenario = MakeFigure2Scenario().ValueOrDie();
  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const auto series =
      model.ScoreCustomer(scenario.dataset, scenario.customer).ValueOrDie();
  // Windows ending months 10..18 should be nearly stable.
  for (size_t k = 4; k < 9 && k < series.size(); ++k) {
    EXPECT_GT(series.StabilityAt(k), 0.9) << "window " << k;
  }
}

TEST(Figure2Scenario, BackgroundCustomersOptional) {
  Figure2ScenarioConfig config;
  config.num_background_customers = 0;
  const Figure2Scenario scenario = MakeFigure2Scenario(config).ValueOrDie();
  EXPECT_EQ(scenario.dataset.store().num_customers(), 1u);
  EXPECT_EQ(scenario.customer, 0u);
}

}  // namespace
}  // namespace datagen
}  // namespace churnlab
