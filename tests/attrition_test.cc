#include "datagen/attrition.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace churnlab {
namespace datagen {
namespace {

CustomerProfile MakeLoyalProfile(size_t repertoire_size) {
  CustomerProfile profile;
  profile.customer = 1;
  profile.cohort = retail::Cohort::kLoyal;
  profile.visits_per_month = 4.0;
  for (size_t i = 0; i < repertoire_size; ++i) {
    RepertoireEntry entry;
    entry.item = static_cast<retail::ItemId>(i);
    entry.trip_probability = 0.3 + 0.6 * static_cast<double>(i) /
                                       static_cast<double>(repertoire_size);
    profile.repertoire.push_back(entry);
  }
  return profile;
}

AttritionConfig DefaultConfig() {
  AttritionConfig config;
  config.onset_month = 18;
  config.onset_jitter_months = 1;
  config.item_loss_probability_per_month = 0.25;
  config.visit_decay_per_month = 0.85;
  return config;
}

TEST(AttritionInjector, MakeValidatesConfig) {
  AttritionConfig negative_onset = DefaultConfig();
  negative_onset.onset_month = -1;
  EXPECT_FALSE(AttritionInjector::Make(negative_onset).ok());
  AttritionConfig bad_loss = DefaultConfig();
  bad_loss.item_loss_probability_per_month = 0.0;
  EXPECT_FALSE(AttritionInjector::Make(bad_loss).ok());
  AttritionConfig bad_decay = DefaultConfig();
  bad_decay.visit_decay_per_month = 1.5;
  EXPECT_FALSE(AttritionInjector::Make(bad_decay).ok());
  AttritionConfig bad_quantile = DefaultConfig();
  bad_quantile.early_loss_quantile = 2.0;
  EXPECT_FALSE(AttritionInjector::Make(bad_quantile).ok());
  EXPECT_TRUE(AttritionInjector::Make(DefaultConfig()).ok());
}

TEST(AttritionInjector, StampsCohortOnsetAndDecay) {
  const auto injector = AttritionInjector::Make(DefaultConfig()).ValueOrDie();
  CustomerProfile profile = MakeLoyalProfile(20);
  Rng rng(1);
  injector.Inject(&profile, 28, &rng);
  EXPECT_EQ(profile.cohort, retail::Cohort::kDefecting);
  EXPECT_GE(profile.attrition_onset_month, 17);
  EXPECT_LE(profile.attrition_onset_month, 19);
  EXPECT_DOUBLE_EQ(profile.visit_decay_per_month, 0.85);
  EXPECT_EQ(profile.prodrome_months, DefaultConfig().prodrome_months);
}

TEST(AttritionInjector, LossMonthsAtOrAfterOnsetWithoutEarlyLosses) {
  AttritionConfig config = DefaultConfig();
  config.early_loss_months = 0;  // plain injection
  const auto injector = AttritionInjector::Make(config).ValueOrDie();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    CustomerProfile profile = MakeLoyalProfile(30);
    Rng rng(seed);
    injector.Inject(&profile, 28, &rng);
    for (const RepertoireEntry& entry : profile.repertoire) {
      if (entry.loss_month < 0) continue;
      EXPECT_GE(entry.loss_month, profile.attrition_onset_month);
      EXPECT_LT(entry.loss_month, 28);
    }
  }
}

TEST(AttritionInjector, MostItemsEventuallyLostWithHighHazard) {
  AttritionConfig config = DefaultConfig();
  config.onset_month = 5;
  config.item_loss_probability_per_month = 0.5;
  const auto injector = AttritionInjector::Make(config).ValueOrDie();
  CustomerProfile profile = MakeLoyalProfile(100);
  Rng rng(7);
  injector.Inject(&profile, 28, &rng);
  size_t lost = 0;
  for (const RepertoireEntry& entry : profile.repertoire) {
    if (entry.loss_month >= 0) ++lost;
  }
  EXPECT_GT(lost, 90u);  // 22 post-onset months at p=0.5
}

TEST(AttritionInjector, EarlyLossesOnlyForWeaklyAttachedItems) {
  AttritionConfig config = DefaultConfig();
  config.onset_jitter_months = 0;
  config.early_loss_months = 4;
  config.early_loss_quantile = 0.25;
  const auto injector = AttritionInjector::Make(config).ValueOrDie();
  bool saw_early_loss = false;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    CustomerProfile profile = MakeLoyalProfile(40);
    Rng rng(seed);
    injector.Inject(&profile, 28, &rng);
    // Threshold = 25th percentile of trip probabilities.
    std::vector<double> probabilities;
    for (const auto& entry : profile.repertoire) {
      probabilities.push_back(entry.trip_probability);
    }
    std::sort(probabilities.begin(), probabilities.end());
    const double threshold = probabilities[probabilities.size() / 4];
    for (const RepertoireEntry& entry : profile.repertoire) {
      if (entry.loss_month >= 0 && entry.loss_month < 18) {
        saw_early_loss = true;
        EXPECT_LE(entry.trip_probability, threshold);
        EXPECT_GE(entry.loss_month, 18 - 4);
      }
    }
  }
  EXPECT_TRUE(saw_early_loss);
}

TEST(AttritionInjector, PreservesNaturalLossIfEarlier) {
  AttritionConfig config = DefaultConfig();
  config.onset_jitter_months = 0;
  const auto injector = AttritionInjector::Make(config).ValueOrDie();
  CustomerProfile profile = MakeLoyalProfile(5);
  profile.repertoire[0].loss_month = 3;  // natural turnover before onset
  Rng rng(11);
  injector.Inject(&profile, 28, &rng);
  EXPECT_EQ(profile.repertoire[0].loss_month, 3);
}

TEST(AttritionInjector, OnsetClampedToZero) {
  AttritionConfig config = DefaultConfig();
  config.onset_month = 0;
  config.onset_jitter_months = 2;
  const auto injector = AttritionInjector::Make(config).ValueOrDie();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    CustomerProfile profile = MakeLoyalProfile(5);
    Rng rng(seed);
    injector.Inject(&profile, 28, &rng);
    EXPECT_GE(profile.attrition_onset_month, 0);
  }
}

TEST(CustomerProfile, VisitRateReflectsProdromeAndDecay) {
  CustomerProfile profile;
  profile.visits_per_month = 4.0;
  profile.attrition_onset_month = 10;
  profile.visit_decay_per_month = 0.5;
  profile.prodrome_months = 2;
  profile.prodrome_visit_factor = 0.8;
  EXPECT_DOUBLE_EQ(profile.VisitRateAt(0), 4.0);
  EXPECT_DOUBLE_EQ(profile.VisitRateAt(7), 4.0);
  EXPECT_DOUBLE_EQ(profile.VisitRateAt(8), 3.2);   // prodrome
  EXPECT_DOUBLE_EQ(profile.VisitRateAt(9), 3.2);   // prodrome
  EXPECT_DOUBLE_EQ(profile.VisitRateAt(10), 2.0);  // decay month 1
  EXPECT_DOUBLE_EQ(profile.VisitRateAt(11), 1.0);  // decay month 2
}

TEST(CustomerProfile, SeasonalFactorModulatesRate) {
  CustomerProfile profile;
  profile.visits_per_month = 4.0;
  profile.seasonal_amplitude = 0.5;
  profile.seasonal_phase_months = 3.0;  // sin peak at month 0
  // Month 0: sin(2*pi*3/12) = sin(pi/2) = 1 -> factor 1.5.
  EXPECT_NEAR(profile.VisitRateAt(0), 6.0, 1e-9);
  // Month 6: sin(2*pi*9/12) = -1 -> factor 0.5.
  EXPECT_NEAR(profile.VisitRateAt(6), 2.0, 1e-9);
  // Period 12: month 12 equals month 0.
  EXPECT_NEAR(profile.VisitRateAt(12), profile.VisitRateAt(0), 1e-9);
}

TEST(CustomerProfile, SeasonalFactorNeverNegative) {
  CustomerProfile profile;
  profile.visits_per_month = 4.0;
  profile.seasonal_amplitude = 1.0;
  for (int32_t month = 0; month < 24; ++month) {
    EXPECT_GE(profile.VisitRateAt(month), 0.0);
  }
}

TEST(CustomerProfile, SeasonalityComposesWithAttrition) {
  CustomerProfile profile;
  profile.visits_per_month = 4.0;
  profile.seasonal_amplitude = 0.5;
  profile.seasonal_phase_months = 3.0;
  profile.attrition_onset_month = 6;
  profile.visit_decay_per_month = 0.5;
  // Month 6 factor 0.5, one decay step -> 4 * 0.5 * 0.5 = 1.0.
  EXPECT_NEAR(profile.VisitRateAt(6), 1.0, 1e-9);
}

TEST(CustomerProfile, LoyalVisitRateConstant) {
  CustomerProfile profile;
  profile.visits_per_month = 3.0;
  for (int32_t month = 0; month < 30; ++month) {
    EXPECT_DOUBLE_EQ(profile.VisitRateAt(month), 3.0);
  }
}

TEST(CustomerProfile, EntryActiveRespectsAdoptionAndLoss) {
  CustomerProfile profile;
  RepertoireEntry entry;
  entry.adoption_month = 5;
  entry.loss_month = 10;
  profile.repertoire.push_back(entry);
  EXPECT_FALSE(profile.EntryActiveAt(0, 4));
  EXPECT_TRUE(profile.EntryActiveAt(0, 5));
  EXPECT_TRUE(profile.EntryActiveAt(0, 9));
  EXPECT_FALSE(profile.EntryActiveAt(0, 10));
  EXPECT_FALSE(profile.EntryActiveAt(0, 20));
}

}  // namespace
}  // namespace datagen
}  // namespace churnlab
