# End-to-end test of the live-telemetry CLI surface on serve-replay:
# quiet-by-default progress logging, the --telemetry-out time-series JSONL
# (schema version + monotonic seq), the --prom-out Prometheus textfile
# (format validation), and the --flight-recorder failpoint-triggered dump.
#
# Invoked by CTest with -DCLI=<binary> -DWORK_DIR=<scratch dir>.

file(MAKE_DIRECTORY ${WORK_DIR})
set(DATASET ${WORK_DIR}/replay.clb)

# Runs the CLI, failing the test on non-zero exit; the combined
# stdout/stderr is returned in `cli_output` for content assertions.
function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE errors)
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "churnlab ${ARGN} failed (${exit_code}):\n${output}\n${errors}")
  endif()
  set(cli_output "${output}${errors}" PARENT_SCOPE)
endfunction()

run_cli(simulate --out ${DATASET} --loyal 40 --defecting 40 --seed 9)

# --- Progress logging is opt-in: a default run must stay quiet. -------------
run_cli(serve-replay --data ${DATASET} --threads 2 --shards 8)
if(cli_output MATCHES "serve_replay_progress" OR cli_output MATCHES "fleet_health")
  message(FATAL_ERROR "non-verbose serve-replay emitted progress logs:\n${cli_output}")
endif()
if(NOT cli_output MATCHES "replayed [0-9]+ receipts")
  message(FATAL_ERROR "serve-replay summary line missing:\n${cli_output}")
endif()

# --- --verbose turns on rate/ETA progress and the fleet-health line. --------
run_cli(--verbose serve-replay --data ${DATASET} --threads 2 --shards 8)
if(NOT cli_output MATCHES "serve_replay_progress .*rate=[0-9]+/s eta=")
  message(FATAL_ERROR "verbose serve-replay lacks progress lines:\n${cli_output}")
endif()
if(NOT cli_output MATCHES "fleet_health shards=8 ")
  message(FATAL_ERROR "verbose serve-replay lacks fleet_health:\n${cli_output}")
endif()

# --- Time-series JSONL: schema version, monotonic seq, counter deltas. ------
set(TS_JSONL ${WORK_DIR}/ts.jsonl)
run_cli(--telemetry-out ${TS_JSONL} --telemetry-interval-ms 250
        serve-replay --data ${DATASET} --threads 2 --shards 8)
if(NOT EXISTS ${TS_JSONL})
  message(FATAL_ERROR "--telemetry-out did not write ${TS_JSONL}")
endif()
file(STRINGS ${TS_JSONL} ts_lines)
list(LENGTH ts_lines num_ts_lines)
if(num_ts_lines LESS 2)
  message(FATAL_ERROR "time series has ${num_ts_lines} lines; want header + samples")
endif()
list(GET ts_lines 0 ts_header)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON ts_version ERROR_VARIABLE json_error
         GET "${ts_header}" churnlab_timeseries_version)
  if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "time-series header unparseable: ${json_error}")
  endif()
  if(NOT ts_version EQUAL 1)
    message(FATAL_ERROR "unexpected time-series version '${ts_version}'")
  endif()
  string(JSON ts_interval GET "${ts_header}" interval_ms)
  if(NOT ts_interval EQUAL 250)
    message(FATAL_ERROR "header interval_ms=${ts_interval}, want 250")
  endif()
  # seq must be strictly monotonic across samples, and counters must carry
  # total + delta.
  set(prev_seq -1)
  math(EXPR last_index "${num_ts_lines} - 1")
  foreach(index RANGE 1 ${last_index})
    list(GET ts_lines ${index} sample)
    string(JSON seq ERROR_VARIABLE json_error GET "${sample}" seq)
    if(NOT json_error STREQUAL "NOTFOUND")
      message(FATAL_ERROR "sample ${index} unparseable: ${json_error}")
    endif()
    if(NOT seq GREATER prev_seq)
      message(FATAL_ERROR "seq not monotonic: ${prev_seq} -> ${seq}")
    endif()
    set(prev_seq ${seq})
    string(JSON ingested ERROR_VARIABLE json_error GET "${sample}"
           counters churnlab.serve.receipts_ingested total)
    if(json_error STREQUAL "NOTFOUND" AND NOT ingested GREATER_EQUAL 0)
      message(FATAL_ERROR "bad receipts_ingested total in: ${sample}")
    endif()
  endforeach()
else()
  foreach(needle "\"churnlab_timeseries_version\":1" "\"seq\":0"
          "\"total\":" "\"delta\":")
    string(FIND "${ts_header}${ts_lines}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "time series lacks ${needle}")
    endif()
  endforeach()
endif()

# --- Prometheus textfile: node-exporter-compatible exposition. --------------
set(PROM_OUT ${WORK_DIR}/metrics.prom)
run_cli(--prom-out ${PROM_OUT}
        serve-replay --data ${DATASET} --threads 2 --shards 8)
if(NOT EXISTS ${PROM_OUT})
  message(FATAL_ERROR "--prom-out did not write ${PROM_OUT}")
endif()
file(STRINGS ${PROM_OUT} prom_lines)
set(saw_receipts_total FALSE)
foreach(line IN LISTS prom_lines)
  if(line MATCHES "^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ")
    continue()
  endif()
  # Every sample line: a spec-valid name, optional {labels}, one value.
  if(NOT line MATCHES "^[a-zA-Z_:][a-zA-Z0-9_:]*(\\{[^{}]*\\})? [^ ]+$")
    message(FATAL_ERROR "invalid exposition line: '${line}'")
  endif()
  if(line MATCHES "^churnlab_serve_receipts_ingested_total [0-9]+$")
    set(saw_receipts_total TRUE)
  endif()
endforeach()
if(NOT saw_receipts_total)
  message(FATAL_ERROR "churnlab_serve_receipts_ingested_total missing from ${PROM_OUT}")
endif()
if(NOT prom_lines MATCHES "# TYPE churnlab_serve_receipts_ingested_total counter")
  message(FATAL_ERROR "counter TYPE header missing from ${PROM_OUT}")
endif()
# Per-shard labeled gauges ride through the --prom-out detailed-timing path.
if(NOT prom_lines MATCHES "churnlab_serve_shard_receipts{shard=\"")
  message(FATAL_ERROR "labeled shard gauges missing from ${PROM_OUT}")
endif()

# --- Flight recorder: a firing failpoint dumps its own site's events. -------
set(FLIGHT_OUT ${WORK_DIR}/flight.jsonl)
run_cli(--flight-recorder ${FLIGHT_OUT}
        serve-replay --data ${DATASET} --threads 2 --shards 8
        --failpoints "serve.ingest.receipt=error@nth(50)")
if(NOT EXISTS ${FLIGHT_OUT})
  message(FATAL_ERROR "--flight-recorder did not write ${FLIGHT_OUT}")
endif()
file(READ ${FLIGHT_OUT} flight_content)
string(FIND "${flight_content}"
       "\"reason\":\"failpoint:failpoint.serve.ingest.receipt\"" found)
if(found EQUAL -1)
  message(FATAL_ERROR "failpoint-triggered dump missing:\n${flight_content}")
endif()
string(FIND "${flight_content}" "\"site\":\"failpoint.serve.ingest.receipt\""
       found)
if(found EQUAL -1)
  message(FATAL_ERROR "firing site's events missing from dump")
endif()
string(FIND "${flight_content}" "\"churnlab_flight_version\":1" found)
if(found EQUAL -1)
  message(FATAL_ERROR "flight dump header missing")
endif()
string(FIND "${flight_content}" "\"site\":\"serve.shard.task\"" found)
if(found EQUAL -1)
  message(FATAL_ERROR "shard-task spans missing from dump")
endif()

# --- Flag validation. -------------------------------------------------------
execute_process(COMMAND ${CLI} --telemetry-out ${WORK_DIR}/bad.jsonl
                        --telemetry-interval-ms 0
                        serve-replay --data ${DATASET}
                RESULT_VARIABLE exit_code OUTPUT_QUIET ERROR_QUIET)
if(exit_code EQUAL 0)
  message(FATAL_ERROR "--telemetry-interval-ms 0 was accepted")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
