#include "rfm/features.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace rfm {
namespace {

// One customer, three receipts: day 10 (spend 10), day 50 (spend 20),
// day 130 (spend 30); 60-day windows -> windows [0,60), [60,120), [120,180).
retail::Dataset MakeTinyDataset() {
  retail::Dataset dataset;
  const auto add = [&](retail::Day day, double spend) {
    retail::Receipt receipt;
    receipt.customer = 1;
    receipt.day = day;
    receipt.spend = spend;
    receipt.items = {0};
    ASSERT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  };
  add(10, 10.0);
  add(50, 20.0);
  add(130, 30.0);
  dataset.SetLabel(1, {retail::Cohort::kLoyal, -1});
  dataset.Finalize();
  return dataset;
}

RfmFeatureOptions TwoMonthOptions() {
  RfmFeatureOptions options;
  options.window_span_months = 2;
  return options;
}

TEST(RfmFeatureExtractor, MakeValidatesOptions) {
  RfmFeatureOptions none = TwoMonthOptions();
  none.use_recency = none.use_frequency = none.use_monetary = false;
  EXPECT_FALSE(RfmFeatureExtractor::Make(none).ok());
  RfmFeatureOptions bad_span = TwoMonthOptions();
  bad_span.window_span_months = 0;
  EXPECT_FALSE(RfmFeatureExtractor::Make(bad_span).ok());
}

TEST(RfmFeatureExtractor, FeatureNamesMatchToggles) {
  RfmFeatureOptions options = TwoMonthOptions();
  options.use_monetary = false;
  const auto extractor = RfmFeatureExtractor::Make(options).ValueOrDie();
  const auto names = extractor.FeatureNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "recency_days");
  EXPECT_EQ(names[2], "frequency_window");
  EXPECT_EQ(extractor.NumFeatures(), 4u);
}

TEST(RfmFeatureExtractor, HandComputedValues) {
  const retail::Dataset dataset = MakeTinyDataset();
  const auto extractor =
      RfmFeatureExtractor::Make(TwoMonthOptions()).ValueOrDie();
  EXPECT_EQ(extractor.NumWindowsFor(dataset), 3);
  const RfmFeatureMatrix matrix = extractor.Extract(dataset).ValueOrDie();
  ASSERT_EQ(matrix.num_rows(), 1u);
  ASSERT_EQ(matrix.num_windows(), 3);
  ASSERT_EQ(matrix.num_features(), 6u);

  // Window 0 (days 0..59): receipts at 10 and 50.
  {
    const auto f = matrix.FeatureVector(0, 0);
    EXPECT_DOUBLE_EQ(f[0], 59.0 - 50.0);          // recency_days
    // mean gap = (50-10)/1 = 40 -> ratio 9/40.
    EXPECT_DOUBLE_EQ(f[1], 9.0 / 40.0);
    EXPECT_DOUBLE_EQ(f[2], 2.0);                  // frequency_window
    EXPECT_DOUBLE_EQ(f[3], 2.0);                  // receipts per window so far
    EXPECT_DOUBLE_EQ(f[4], 30.0);                 // monetary_window
    EXPECT_DOUBLE_EQ(f[5], 30.0);                 // spend per window so far
  }
  // Window 1 (days 60..119): no receipts.
  {
    const auto f = matrix.FeatureVector(0, 1);
    EXPECT_DOUBLE_EQ(f[0], 119.0 - 50.0);
    EXPECT_DOUBLE_EQ(f[2], 0.0);
    EXPECT_DOUBLE_EQ(f[3], 1.0);   // 2 receipts / 2 windows
    EXPECT_DOUBLE_EQ(f[4], 0.0);
    EXPECT_DOUBLE_EQ(f[5], 15.0);  // 30 / 2
  }
  // Window 2 (days 120..179): one receipt at 130.
  {
    const auto f = matrix.FeatureVector(0, 2);
    EXPECT_DOUBLE_EQ(f[0], 179.0 - 130.0);
    // mean gap = (130-10)/2 = 60 -> ratio 49/60.
    EXPECT_DOUBLE_EQ(f[1], 49.0 / 60.0);
    EXPECT_DOUBLE_EQ(f[2], 1.0);
    EXPECT_DOUBLE_EQ(f[3], 1.0);
    EXPECT_DOUBLE_EQ(f[4], 30.0);
    EXPECT_DOUBLE_EQ(f[5], 20.0);
  }
}

TEST(RfmFeatureExtractor, NeverSeenCustomerGetsMaximalRecency) {
  retail::Dataset dataset;
  retail::Receipt receipt;
  receipt.customer = 1;
  receipt.day = 150;  // first purchase in window 2
  receipt.spend = 5.0;
  receipt.items = {0};
  ASSERT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  dataset.Finalize();
  const auto extractor =
      RfmFeatureExtractor::Make(TwoMonthOptions()).ValueOrDie();
  const RfmFeatureMatrix matrix = extractor.Extract(dataset).ValueOrDie();
  const auto window0 = matrix.FeatureVector(0, 0);
  EXPECT_DOUBLE_EQ(window0[0], 60.0);  // whole span, never seen
  const auto window1 = matrix.FeatureVector(0, 1);
  EXPECT_DOUBLE_EQ(window1[0], 120.0);
}

TEST(RfmFeatureExtractor, NumWindowsOverride) {
  const retail::Dataset dataset = MakeTinyDataset();
  RfmFeatureOptions options = TwoMonthOptions();
  options.num_windows = 5;
  const auto extractor = RfmFeatureExtractor::Make(options).ValueOrDie();
  const RfmFeatureMatrix matrix = extractor.Extract(dataset).ValueOrDie();
  EXPECT_EQ(matrix.num_windows(), 5);
  // Window 4 has no receipts; history statistics persist.
  const auto f = matrix.FeatureVector(0, 4);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_DOUBLE_EQ(f[5], 60.0 / 5.0);
}

TEST(RfmFeatureExtractor, DisabledFamiliesProduceNarrowRows) {
  const retail::Dataset dataset = MakeTinyDataset();
  RfmFeatureOptions options = TwoMonthOptions();
  options.use_recency = false;
  options.use_monetary = false;
  const auto extractor = RfmFeatureExtractor::Make(options).ValueOrDie();
  const RfmFeatureMatrix matrix = extractor.Extract(dataset).ValueOrDie();
  ASSERT_EQ(matrix.num_features(), 2u);
  EXPECT_DOUBLE_EQ(matrix.FeatureVector(0, 0)[0], 2.0);  // frequency_window
}

TEST(RfmFeatureExtractor, UnfinalizedDatasetFails) {
  retail::Dataset dataset;
  const auto extractor =
      RfmFeatureExtractor::Make(TwoMonthOptions()).ValueOrDie();
  retail::Receipt receipt;
  receipt.customer = 1;
  receipt.day = 0;
  receipt.items = {0};
  ASSERT_TRUE(dataset.mutable_store().Append(std::move(receipt)).ok());
  EXPECT_FALSE(extractor.Extract(dataset).ok());
}

}  // namespace
}  // namespace rfm
}  // namespace churnlab
