#include "common/kfold.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

std::vector<int> MakeLabels(size_t negatives, size_t positives) {
  std::vector<int> labels(negatives, 0);
  labels.insert(labels.end(), positives, 1);
  return labels;
}

TEST(StratifiedKFold, FoldsPartitionAllIndices) {
  const auto labels = MakeLabels(30, 20);
  const auto folds = StratifiedKFold::Make(labels, 5, 1).ValueOrDie();
  ASSERT_EQ(folds.num_folds(), 5u);
  std::set<size_t> all;
  size_t total = 0;
  for (size_t f = 0; f < folds.num_folds(); ++f) {
    for (const size_t index : folds.TestIndices(f)) {
      EXPECT_LT(index, labels.size());
      all.insert(index);
      ++total;
    }
  }
  EXPECT_EQ(total, labels.size());      // no duplicates across folds
  EXPECT_EQ(all.size(), labels.size());  // full coverage
}

TEST(StratifiedKFold, FoldsAreBalancedInSize) {
  const auto labels = MakeLabels(52, 48);
  const auto folds = StratifiedKFold::Make(labels, 5, 2).ValueOrDie();
  for (size_t f = 0; f < folds.num_folds(); ++f) {
    EXPECT_NEAR(static_cast<double>(folds.TestIndices(f).size()), 20.0, 1.0);
  }
}

TEST(StratifiedKFold, ClassProportionsPreserved) {
  const auto labels = MakeLabels(80, 20);  // 20% positive
  const auto folds = StratifiedKFold::Make(labels, 5, 3).ValueOrDie();
  for (size_t f = 0; f < folds.num_folds(); ++f) {
    size_t positives = 0;
    for (const size_t index : folds.TestIndices(f)) {
      positives += static_cast<size_t>(labels[index]);
    }
    EXPECT_EQ(positives, 4u) << "fold " << f;
  }
}

TEST(StratifiedKFold, TrainIsComplementOfTest) {
  const auto labels = MakeLabels(15, 10);
  const auto folds = StratifiedKFold::Make(labels, 5, 4).ValueOrDie();
  for (size_t f = 0; f < folds.num_folds(); ++f) {
    const auto train = folds.TrainIndices(f);
    const auto& test = folds.TestIndices(f);
    EXPECT_EQ(train.size() + test.size(), labels.size());
    std::set<size_t> train_set(train.begin(), train.end());
    for (const size_t index : test) {
      EXPECT_FALSE(train_set.count(index)) << "index " << index;
    }
  }
}

TEST(StratifiedKFold, DeterministicBySeed) {
  const auto labels = MakeLabels(20, 20);
  const auto a = StratifiedKFold::Make(labels, 4, 9).ValueOrDie();
  const auto b = StratifiedKFold::Make(labels, 4, 9).ValueOrDie();
  for (size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(a.TestIndices(f), b.TestIndices(f));
  }
}

TEST(StratifiedKFold, DifferentSeedsShuffleDifferently) {
  const auto labels = MakeLabels(50, 50);
  const auto a = StratifiedKFold::Make(labels, 5, 1).ValueOrDie();
  const auto b = StratifiedKFold::Make(labels, 5, 2).ValueOrDie();
  // At least one fold differs.
  bool any_different = false;
  for (size_t f = 0; f < 5; ++f) {
    if (a.TestIndices(f) != b.TestIndices(f)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(StratifiedKFold, MultiClassLabelsSupported) {
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) labels.insert(labels.end(), 12, c);
  const auto folds = StratifiedKFold::Make(labels, 4, 5).ValueOrDie();
  for (size_t f = 0; f < folds.num_folds(); ++f) {
    std::vector<int> counts(3, 0);
    for (const size_t index : folds.TestIndices(f)) ++counts[labels[index]];
    EXPECT_EQ(counts[0], 3);
    EXPECT_EQ(counts[1], 3);
    EXPECT_EQ(counts[2], 3);
  }
}

TEST(StratifiedKFold, ValidationErrors) {
  EXPECT_TRUE(StratifiedKFold::Make({0, 1}, 1, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      StratifiedKFold::Make({0, 1}, 3, 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace churnlab
