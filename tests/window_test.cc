#include "core/window.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

retail::Receipt MakeReceipt(retail::Day day, std::vector<retail::ItemId> items) {
  retail::Receipt receipt;
  receipt.customer = 1;
  receipt.day = day;
  receipt.items = std::move(items);
  receipt.spend = 5.0;
  return receipt;
}

Symbol Identity(retail::ItemId item) { return item; }

TEST(Windower, MakeValidatesOptions) {
  WindowerOptions bad_span;
  bad_span.window_span_days = 0;
  EXPECT_TRUE(Windower::Make(bad_span).status().IsInvalidArgument());
  WindowerOptions bad_origin;
  bad_origin.origin_day = -1;
  EXPECT_TRUE(Windower::Make(bad_origin).status().IsInvalidArgument());
  EXPECT_TRUE(Windower::Make(WindowerOptions{}).ok());
}

TEST(Windower, WindowIndexOfAndCoverage) {
  WindowerOptions options;
  options.window_span_days = 60;
  const Windower windower(options);
  EXPECT_EQ(windower.WindowIndexOf(0), 0);
  EXPECT_EQ(windower.WindowIndexOf(59), 0);
  EXPECT_EQ(windower.WindowIndexOf(60), 1);
  EXPECT_EQ(windower.WindowsToCover(0), 1);
  EXPECT_EQ(windower.WindowsToCover(59), 1);
  EXPECT_EQ(windower.WindowsToCover(60), 2);
  EXPECT_EQ(windower.WindowsToCover(-5), 0);
}

TEST(Windower, BuildsUnionPerWindow) {
  std::vector<retail::Receipt> receipts = {
      MakeReceipt(1, {1, 2}),
      MakeReceipt(30, {2, 3}),
      MakeReceipt(65, {4}),
  };
  WindowerOptions options;
  options.window_span_days = 60;
  const Windower windower(options);
  const WindowedHistory history =
      windower.Build(std::span<const retail::Receipt>(receipts), Identity);
  ASSERT_EQ(history.num_windows(), 2u);
  EXPECT_EQ(history.windows[0].symbols, (std::vector<Symbol>{1, 2, 3}));
  EXPECT_EQ(history.windows[0].num_receipts, 2u);
  EXPECT_DOUBLE_EQ(history.windows[0].spend, 10.0);
  EXPECT_EQ(history.windows[1].symbols, (std::vector<Symbol>{4}));
}

TEST(Windower, EmptyWindowsMaterialised) {
  std::vector<retail::Receipt> receipts = {
      MakeReceipt(1, {1}),
      MakeReceipt(200, {2}),
  };
  WindowerOptions options;
  options.window_span_days = 60;
  const Windower windower(options);
  const WindowedHistory history =
      windower.Build(std::span<const retail::Receipt>(receipts), Identity);
  ASSERT_EQ(history.num_windows(), 4u);
  EXPECT_TRUE(history.windows[1].symbols.empty());
  EXPECT_EQ(history.windows[1].num_receipts, 0u);
  EXPECT_TRUE(history.windows[2].symbols.empty());
  EXPECT_FALSE(history.windows[3].symbols.empty());
}

TEST(Windower, FixedNumWindowsDropsOutOfRangeReceipts) {
  std::vector<retail::Receipt> receipts = {
      MakeReceipt(1, {1}),
      MakeReceipt(500, {2}),  // beyond the fixed horizon
  };
  WindowerOptions options;
  options.window_span_days = 60;
  options.num_windows = 2;
  const Windower windower(options);
  const WindowedHistory history =
      windower.Build(std::span<const retail::Receipt>(receipts), Identity);
  ASSERT_EQ(history.num_windows(), 2u);
  EXPECT_EQ(history.windows[0].symbols, (std::vector<Symbol>{1}));
  EXPECT_TRUE(history.windows[1].symbols.empty());
}

TEST(Windower, EmptyHistoryNoWindows) {
  const Windower windower(WindowerOptions{});
  const WindowedHistory history =
      windower.Build(std::span<const retail::Receipt>(), Identity);
  EXPECT_EQ(history.num_windows(), 0u);
}

TEST(Windower, MapperCanMergeAndDropSymbols) {
  std::vector<retail::Receipt> receipts = {MakeReceipt(1, {1, 2, 3, 4})};
  WindowerOptions options;
  options.window_span_days = 60;
  const Windower windower(options);
  const WindowedHistory history = windower.Build(
      std::span<const retail::Receipt>(receipts), [](retail::ItemId item) {
        if (item == 4) return kInvalidSymbol;  // dropped
        return Symbol{100};                    // all merge to one symbol
      });
  ASSERT_EQ(history.num_windows(), 1u);
  EXPECT_EQ(history.windows[0].symbols, (std::vector<Symbol>{100}));
}

TEST(Window, ContainsUsesBinarySearch) {
  Window window;
  window.symbols = {2, 5, 9};
  EXPECT_TRUE(window.Contains(2));
  EXPECT_TRUE(window.Contains(9));
  EXPECT_FALSE(window.Contains(3));
  EXPECT_FALSE(window.Contains(100));
}

// Property suite: windows are consecutive, non-overlapping, equal span,
// and receipts land in the window containing their day.
class WindowerPropertyTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(WindowerPropertyTest, InvariantsHold) {
  const int32_t span = GetParam();
  std::vector<retail::Receipt> receipts;
  for (retail::Day day = 0; day < 400; day += 13) {
    receipts.push_back(MakeReceipt(day, {static_cast<retail::ItemId>(day)}));
  }
  WindowerOptions options;
  options.window_span_days = span;
  const Windower windower(options);
  const WindowedHistory history =
      windower.Build(std::span<const retail::Receipt>(receipts), Identity);

  ASSERT_GT(history.num_windows(), 0u);
  size_t receipts_seen = 0;
  for (size_t k = 0; k < history.num_windows(); ++k) {
    const Window& window = history.windows[k];
    EXPECT_EQ(window.index, static_cast<int32_t>(k));
    EXPECT_EQ(window.end_day - window.begin_day, span);
    if (k > 0) {
      EXPECT_EQ(window.begin_day, history.windows[k - 1].end_day);
    }
    receipts_seen += window.num_receipts;
    // Each symbol (== receipt day here) must fall inside the window.
    for (const Symbol symbol : window.symbols) {
      EXPECT_GE(static_cast<retail::Day>(symbol), window.begin_day);
      EXPECT_LT(static_cast<retail::Day>(symbol), window.end_day);
    }
  }
  EXPECT_EQ(receipts_seen, receipts.size());
}

INSTANTIATE_TEST_SUITE_P(Spans, WindowerPropertyTest,
                         ::testing::Values(7, 30, 60, 90, 365));

}  // namespace
}  // namespace core
}  // namespace churnlab
