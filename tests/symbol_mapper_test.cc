#include "core/symbol_mapper.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

struct Fixture {
  retail::ItemDictionary items;
  retail::Taxonomy taxonomy;

  Fixture() {
    const retail::DepartmentId dairy = taxonomy.AddDepartment("dairy");
    const retail::SegmentId milk =
        taxonomy.AddSegment("milk", dairy).ValueOrDie();
    const retail::SegmentId cheese =
        taxonomy.AddSegment("cheese", dairy).ValueOrDie();
    const retail::ItemId whole = items.GetOrAdd("whole-milk");
    const retail::ItemId skim = items.GetOrAdd("skim-milk");
    const retail::ItemId brie = items.GetOrAdd("brie");
    items.GetOrAdd("mystery");  // no segment
    EXPECT_TRUE(taxonomy.AssignItem(whole, milk).ok());
    EXPECT_TRUE(taxonomy.AssignItem(skim, milk).ok());
    EXPECT_TRUE(taxonomy.AssignItem(brie, cheese).ok());
  }
};

TEST(SymbolMapper, ProductGranularityIsIdentity) {
  const Fixture fixture;
  const auto mapper =
      SymbolMapper::Make(retail::Granularity::kProduct, nullptr).ValueOrDie();
  EXPECT_EQ(mapper.Map(0), 0u);
  EXPECT_EQ(mapper.Map(42), 42u);
  EXPECT_EQ(mapper.SymbolName(2, fixture.items), "brie");
  EXPECT_EQ(mapper.SymbolName(99, fixture.items), "item#99");
}

TEST(SymbolMapper, SegmentGranularityMergesWithinSegment) {
  const Fixture fixture;
  const auto mapper =
      SymbolMapper::Make(retail::Granularity::kSegment, &fixture.taxonomy)
          .ValueOrDie();
  EXPECT_EQ(mapper.Map(0), mapper.Map(1));  // both milk
  EXPECT_NE(mapper.Map(0), mapper.Map(2));  // milk vs cheese
  EXPECT_EQ(mapper.SymbolName(mapper.Map(0), fixture.items), "milk");
  EXPECT_EQ(mapper.SymbolName(mapper.Map(2), fixture.items), "cheese");
}

TEST(SymbolMapper, UnassignedItemsGoToReservedBucket) {
  const Fixture fixture;
  const auto mapper =
      SymbolMapper::Make(retail::Granularity::kSegment, &fixture.taxonomy)
          .ValueOrDie();
  EXPECT_EQ(mapper.Map(3), mapper.unsegmented_bucket());
  EXPECT_EQ(mapper.unsegmented_bucket(),
            static_cast<Symbol>(fixture.taxonomy.num_segments()));
  EXPECT_EQ(mapper.SymbolName(mapper.unsegmented_bucket(), fixture.items),
            "(unsegmented)");
}

TEST(SymbolMapper, SegmentGranularityRequiresTaxonomy) {
  EXPECT_TRUE(SymbolMapper::Make(retail::Granularity::kSegment, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(SymbolMapper, NeverReturnsInvalidSymbol) {
  const Fixture fixture;
  const auto mapper =
      SymbolMapper::Make(retail::Granularity::kSegment, &fixture.taxonomy)
          .ValueOrDie();
  for (retail::ItemId item = 0; item < 10; ++item) {
    EXPECT_NE(mapper.Map(item), kInvalidSymbol);
  }
}

}  // namespace
}  // namespace core
}  // namespace churnlab
