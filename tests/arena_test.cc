// Unit tests for BlockArena: size-class rounding, freelist reuse,
// oversized blocks, and exact byte accounting.

#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(BlockArena, SizeClassLadderIsPowersPlusMidpoints) {
  // 8, 16, then two classes per octave: the 3/4 midpoint and the power
  // itself (24, 32, 48, 64, 96, 128, ...). All multiples of 8.
  EXPECT_EQ(BlockArena::SizeClassFor(0), BlockArena::kMinBlockBytes);
  EXPECT_EQ(BlockArena::SizeClassFor(1), BlockArena::kMinBlockBytes);
  EXPECT_EQ(BlockArena::SizeClassFor(8), 8u);
  EXPECT_EQ(BlockArena::SizeClassFor(9), 16u);
  EXPECT_EQ(BlockArena::SizeClassFor(16), 16u);
  EXPECT_EQ(BlockArena::SizeClassFor(17), 24u);
  EXPECT_EQ(BlockArena::SizeClassFor(24), 24u);
  EXPECT_EQ(BlockArena::SizeClassFor(25), 32u);
  EXPECT_EQ(BlockArena::SizeClassFor(33), 48u);
  EXPECT_EQ(BlockArena::SizeClassFor(49), 64u);
  EXPECT_EQ(BlockArena::SizeClassFor(65), 96u);
  EXPECT_EQ(BlockArena::SizeClassFor(97), 128u);
  EXPECT_EQ(BlockArena::SizeClassFor(768), 768u);
  EXPECT_EQ(BlockArena::SizeClassFor(1000), 1024u);
  EXPECT_EQ(BlockArena::SizeClassFor(1024), 1024u);
  EXPECT_EQ(BlockArena::SizeClassFor(1025), 1536u);
  EXPECT_EQ(BlockArena::SizeClassFor(1537), 2048u);
}

TEST(BlockArena, AllocateReportsClassCapacityAndAligns) {
  BlockArena arena;
  size_t capacity = 0;
  void* block = arena.Allocate(12, &capacity);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(capacity, 16u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block) % 8, 0u);
  // The block is writable over its whole capacity.
  std::memset(block, 0xab, capacity);
  arena.Release(block, capacity);
}

TEST(BlockArena, FreelistReusesReleasedBlocks) {
  BlockArena arena;
  size_t capacity = 0;
  void* first = arena.Allocate(100, &capacity);
  EXPECT_EQ(capacity, 128u);
  arena.Release(first, capacity);
  // Same class request: the released block comes straight back.
  size_t again = 0;
  void* second = arena.Allocate(120, &again);
  EXPECT_EQ(again, 128u);
  EXPECT_EQ(second, first);
  // No new chunk was needed for the reuse.
  EXPECT_EQ(arena.bytes_reserved(), BlockArena::kDefaultChunkBytes);
  arena.Release(second, again);
}

TEST(BlockArena, AccountingTracksLiveBlocksExactly) {
  BlockArena arena;
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.blocks_in_use(), 0u);

  std::vector<std::pair<void*, size_t>> blocks;
  size_t expected = 0;
  for (const size_t bytes : {size_t{8}, size_t{20}, size_t{100},
                             size_t{4096}}) {
    size_t capacity = 0;
    blocks.emplace_back(arena.Allocate(bytes, &capacity), capacity);
    expected += capacity;
    EXPECT_EQ(arena.bytes_in_use(), expected);
    EXPECT_EQ(arena.blocks_in_use(), blocks.size());
  }
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_in_use());

  for (const auto& [block, capacity] : blocks) {
    arena.Release(block, capacity);
    expected -= capacity;
    EXPECT_EQ(arena.bytes_in_use(), expected);
  }
  EXPECT_EQ(arena.blocks_in_use(), 0u);
  // Reserved chunks are kept for reuse; accounting stays monotone.
  EXPECT_GE(arena.bytes_reserved(), BlockArena::kDefaultChunkBytes);
}

TEST(BlockArena, ReleaseNullIsANoOp) {
  BlockArena arena;
  arena.Release(nullptr, 64);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.blocks_in_use(), 0u);
}

TEST(BlockArena, OversizedBlocksGetDedicatedChunks) {
  BlockArena arena(/*chunk_bytes=*/1024);
  size_t capacity = 0;
  void* big = arena.Allocate(10000, &capacity);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(capacity, 12288u);
  EXPECT_GE(arena.bytes_reserved(), capacity);
  std::memset(big, 0x5a, capacity);
  arena.Release(big, capacity);
  // The oversized block is reusable like any other class member.
  size_t again = 0;
  void* reuse = arena.Allocate(12000, &again);
  EXPECT_EQ(reuse, big);
  arena.Release(reuse, again);
}

TEST(BlockArena, ManySmallBlocksSpanChunks) {
  BlockArena arena(/*chunk_bytes=*/256);
  std::vector<std::pair<void*, size_t>> blocks;
  for (int i = 0; i < 100; ++i) {
    size_t capacity = 0;
    void* block = arena.Allocate(28, &capacity);
    ASSERT_NE(block, nullptr);
    // Touch the block so a bad carve would trip ASan.
    std::memset(block, i, capacity);
    blocks.emplace_back(block, capacity);
  }
  EXPECT_EQ(arena.blocks_in_use(), 100u);
  EXPECT_EQ(arena.bytes_in_use(), 100u * 32u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_in_use());
  for (const auto& [block, capacity] : blocks) {
    arena.Release(block, capacity);
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(BlockArena, MoveTransfersOwnership) {
  BlockArena source;
  size_t capacity = 0;
  void* block = source.Allocate(64, &capacity);
  std::memset(block, 1, capacity);
  BlockArena moved = std::move(source);
  EXPECT_EQ(moved.bytes_in_use(), 64u);
  EXPECT_EQ(moved.blocks_in_use(), 1u);
  // The block's memory survives the move.
  EXPECT_EQ(static_cast<unsigned char*>(block)[0], 1);
  moved.Release(block, capacity);
  EXPECT_EQ(moved.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace churnlab
