// Adversarial-input robustness: malformed files and random bytes must
// produce clean Status errors (or benign parses), never crashes, hangs or
// silent corruption.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/csv.h"
#include "common/random.h"
#include "datagen/scenario.h"
#include "retail/dataset.h"

namespace churnlab {
namespace {

TEST(Robustness, CsvReaderSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage;
    const size_t size = rng.NextUint64(400);
    for (size_t i = 0; i < size; ++i) {
      garbage += static_cast<char>(rng.NextUint64(256));
    }
    CsvReader reader = CsvReader::FromString(garbage);
    std::vector<std::string> row;
    size_t rows = 0;
    while (reader.ReadRow(&row) && rows < 10000) ++rows;
    // Either clean EOF or a structured error — and termination either way.
    EXPECT_LT(rows, 10000u);
  }
}

TEST(Robustness, BinaryReaderSurvivesRandomBytes) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage;
    const size_t size = rng.NextUint64(200);
    for (size_t i = 0; i < size; ++i) {
      garbage += static_cast<char>(rng.NextUint64(256));
    }
    BinaryReader reader(garbage);
    // Mixed read sequence; all failures must be Status, not UB.
    (void)reader.ReadVarint();
    (void)reader.ReadString();
    (void)reader.ReadDouble();
    (void)reader.ReadSignedVarint();
  }
}

TEST(Robustness, DatasetLoadBinaryRejectsEveryTruncation) {
  // Build a small valid dataset file, then attempt to load every strict
  // prefix. Each attempt must return an error (never crash, never OK —
  // a strict prefix always misses trailing data).
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 3;
  config.population.num_defecting = 3;
  config.market.num_segments = 20;
  config.market.num_products = 40;
  config.population.min_repertoire_segments = 4;
  config.population.max_repertoire_segments = 10;
  config.num_months = 4;
  config.seed = 3;
  const retail::Dataset dataset =
      datagen::MakePaperDataset(config).ValueOrDie();
  const std::string path = testing::TempDir() + "/churnlab_trunc.clb";
  ASSERT_TRUE(dataset.SaveBinary(path).ok());

  std::string bytes;
  {
    auto reader = BinaryReader::OpenFile(path);
    ASSERT_TRUE(reader.ok());
    // Reconstruct the raw file contents for truncation.
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char buffer[4096];
    size_t read;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      bytes.append(buffer, read);
    }
    std::fclose(file);
  }
  ASSERT_GT(bytes.size(), 100u);

  const std::string truncated_path =
      testing::TempDir() + "/churnlab_trunc_cut.clb";
  // Step through prefixes (every byte near the start, coarser later, and
  // the final 32 boundaries).
  std::vector<size_t> cuts;
  for (size_t i = 0; i < bytes.size(); i += 1 + i / 16) cuts.push_back(i);
  for (size_t i = bytes.size() > 32 ? bytes.size() - 32 : 0;
       i < bytes.size(); ++i) {
    cuts.push_back(i);
  }
  for (const size_t cut : cuts) {
    std::FILE* file = std::fopen(truncated_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, file), cut);
    std::fclose(file);
    const auto loaded = retail::Dataset::LoadBinary(truncated_path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded OK";
  }
  std::remove(path.c_str());
  std::remove(truncated_path.c_str());
}

TEST(Robustness, DatasetLoadBinarySurvivesBitFlips) {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 2;
  config.population.num_defecting = 2;
  config.market.num_segments = 10;
  config.market.num_products = 20;
  config.population.min_repertoire_segments = 3;
  config.population.max_repertoire_segments = 6;
  config.num_months = 3;
  config.seed = 4;
  const retail::Dataset dataset =
      datagen::MakePaperDataset(config).ValueOrDie();
  const std::string path = testing::TempDir() + "/churnlab_flip.clb";
  ASSERT_TRUE(dataset.SaveBinary(path).ok());
  std::string bytes;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    char buffer[4096];
    size_t read;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      bytes.append(buffer, read);
    }
    std::fclose(file);
  }

  Rng rng(5);
  const std::string flipped_path = testing::TempDir() + "/churnlab_flip2.clb";
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = bytes;
    const size_t position =
        static_cast<size_t>(rng.NextUint64(corrupted.size()));
    corrupted[position] =
        static_cast<char>(corrupted[position] ^
                          (1 << rng.NextUint64(8)));
    std::FILE* file = std::fopen(flipped_path.c_str(), "wb");
    ASSERT_EQ(std::fwrite(corrupted.data(), 1, corrupted.size(), file),
              corrupted.size());
    std::fclose(file);
    // May legitimately load (a flipped price byte is still a dataset) or
    // fail cleanly — it must not crash. If it loads, basic invariants hold.
    const auto loaded = retail::Dataset::LoadBinary(flipped_path);
    if (loaded.ok()) {
      EXPECT_TRUE(loaded.ValueOrDie().store().finalized());
    }
  }
  std::remove(path.c_str());
  std::remove(flipped_path.c_str());
}

TEST(Robustness, LoadCsvWithBrokenRowsFails) {
  const std::string prefix = testing::TempDir() + "/churnlab_badcsv";
  // taxonomy ok, receipts malformed (wrong column count / bad numbers).
  {
    std::FILE* file = std::fopen((prefix + ".taxonomy.csv").c_str(), "wb");
    std::fputs("item,segment,department\nmilk-0,milk,dairy\n", file);
    std::fclose(file);
  }
  {
    std::FILE* file = std::fopen((prefix + ".labels.csv").c_str(), "wb");
    std::fputs("customer,cohort,onset_month\n1,loyal,-1\n", file);
    std::fclose(file);
  }
  const auto write_receipts = [&](const char* body) {
    std::FILE* file = std::fopen((prefix + ".receipts.csv").c_str(), "wb");
    std::fputs("customer,day,spend,items\n", file);
    std::fputs(body, file);
    std::fclose(file);
  };

  write_receipts("1,5\n");  // too few columns
  EXPECT_FALSE(retail::Dataset::LoadCsv(prefix).ok());
  write_receipts("1,notaday,3.5,milk-0\n");
  EXPECT_FALSE(retail::Dataset::LoadCsv(prefix).ok());
  write_receipts("1,5,notaspend,milk-0\n");
  EXPECT_FALSE(retail::Dataset::LoadCsv(prefix).ok());
  write_receipts("1,-7,3.5,milk-0\n");  // negative day
  EXPECT_FALSE(retail::Dataset::LoadCsv(prefix).ok());
  write_receipts("1,5,3.5,milk-0\n");  // and a valid one loads
  EXPECT_TRUE(retail::Dataset::LoadCsv(prefix).ok());

  std::remove((prefix + ".receipts.csv").c_str());
  std::remove((prefix + ".taxonomy.csv").c_str());
  std::remove((prefix + ".labels.csv").c_str());
}

}  // namespace
}  // namespace churnlab
