#include "core/score_matrix.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

TEST(ScoreMatrix, ZeroInitialised) {
  const ScoreMatrix matrix({10, 20, 30}, 4);
  EXPECT_EQ(matrix.num_rows(), 3u);
  EXPECT_EQ(matrix.num_windows(), 4);
  for (size_t row = 0; row < 3; ++row) {
    for (int32_t window = 0; window < 4; ++window) {
      EXPECT_DOUBLE_EQ(matrix.At(row, window), 0.0);
    }
  }
}

TEST(ScoreMatrix, SetAndGet) {
  ScoreMatrix matrix({10, 20}, 3);
  matrix.Set(0, 2, 0.75);
  matrix.Set(1, 0, -1.5);
  EXPECT_DOUBLE_EQ(matrix.At(0, 2), 0.75);
  EXPECT_DOUBLE_EQ(matrix.At(1, 0), -1.5);
  EXPECT_DOUBLE_EQ(matrix.At(0, 0), 0.0);
}

TEST(ScoreMatrix, RowPointerWritesThrough) {
  ScoreMatrix matrix({7}, 3);
  double* row = matrix.Row(0);
  row[0] = 1.0;
  row[2] = 3.0;
  EXPECT_DOUBLE_EQ(matrix.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(matrix.At(0, 2), 3.0);
}

TEST(ScoreMatrix, RowOfResolvesCustomers) {
  const ScoreMatrix matrix({100, 5, 42}, 1);
  EXPECT_EQ(matrix.RowOf(100).ValueOrDie(), 0u);
  EXPECT_EQ(matrix.RowOf(42).ValueOrDie(), 2u);
  EXPECT_TRUE(matrix.RowOf(7).status().IsNotFound());
}

TEST(ScoreMatrix, ScoreOfChecksBounds) {
  ScoreMatrix matrix({1}, 2);
  matrix.Set(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(matrix.ScoreOf(1, 1).ValueOrDie(), 0.5);
  EXPECT_TRUE(matrix.ScoreOf(1, 5).status().IsOutOfRange());
  EXPECT_TRUE(matrix.ScoreOf(1, -1).status().IsOutOfRange());
  EXPECT_TRUE(matrix.ScoreOf(9, 0).status().IsNotFound());
}

TEST(ScoreMatrix, WindowColumnInRowOrder) {
  ScoreMatrix matrix({3, 1, 2}, 2);
  matrix.Set(0, 1, 0.1);
  matrix.Set(1, 1, 0.2);
  matrix.Set(2, 1, 0.3);
  EXPECT_EQ(matrix.WindowColumn(1), (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(ScoreMatrix, CsvRoundTrip) {
  ScoreMatrix matrix({10, 20, 5}, 3);
  matrix.Set(0, 0, 0.125);
  matrix.Set(1, 2, 1.0 / 3.0);  // exercises full-precision export
  matrix.Set(2, 1, -4.5);
  const std::string path = testing::TempDir() + "/churnlab_scores.csv";
  ASSERT_TRUE(matrix.SaveCsv(path).ok());
  const auto loaded = ScoreMatrix::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->customers(), matrix.customers());
  EXPECT_EQ(loaded->num_windows(), 3);
  for (size_t row = 0; row < 3; ++row) {
    for (int32_t window = 0; window < 3; ++window) {
      EXPECT_DOUBLE_EQ(loaded->At(row, window), matrix.At(row, window));
    }
  }
  std::remove(path.c_str());
}

TEST(ScoreMatrix, LoadCsvRejectsRaggedRows) {
  const std::string path = testing::TempDir() + "/churnlab_scores_bad.csv";
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    std::fputs("customer,w0,w1\n1,0.5\n", file);
    std::fclose(file);
  }
  EXPECT_FALSE(ScoreMatrix::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ScoreMatrix, LoadCsvRejectsDuplicateCustomer) {
  // Regression: the row index keeps the first mapping per id, so a repeated
  // customer used to load "successfully" while ScoreOf served the stale
  // first row for every later duplicate.
  const std::string path = testing::TempDir() + "/churnlab_scores_dup.csv";
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    std::fputs("customer,w0\n1,0.5\n2,0.25\n1,0.75\n", file);
    std::fclose(file);
  }
  const auto loaded = ScoreMatrix::LoadCsv(path);
  EXPECT_TRUE(loaded.status().IsInvalidArgument())
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("repeats customer 1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ScoreMatrix, LoadCsvMissingFileFails) {
  EXPECT_TRUE(
      ScoreMatrix::LoadCsv("/nonexistent/scores.csv").status().IsIOError());
}

TEST(ScoreMatrix, ZeroWindows) {
  const ScoreMatrix matrix({1, 2}, 0);
  EXPECT_EQ(matrix.num_windows(), 0);
  EXPECT_EQ(matrix.num_rows(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace churnlab
