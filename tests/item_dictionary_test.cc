#include "retail/item_dictionary.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace retail {
namespace {

TEST(ItemDictionary, AssignsDenseIdsInInsertionOrder) {
  ItemDictionary dictionary;
  EXPECT_EQ(dictionary.GetOrAdd("coffee"), 0u);
  EXPECT_EQ(dictionary.GetOrAdd("milk"), 1u);
  EXPECT_EQ(dictionary.GetOrAdd("cheese"), 2u);
  EXPECT_EQ(dictionary.size(), 3u);
}

TEST(ItemDictionary, GetOrAddIsIdempotent) {
  ItemDictionary dictionary;
  const ItemId first = dictionary.GetOrAdd("coffee");
  const ItemId second = dictionary.GetOrAdd("coffee");
  EXPECT_EQ(first, second);
  EXPECT_EQ(dictionary.size(), 1u);
}

TEST(ItemDictionary, FindAndContains) {
  ItemDictionary dictionary;
  dictionary.GetOrAdd("milk");
  EXPECT_EQ(dictionary.Find("milk"), 0u);
  EXPECT_EQ(dictionary.Find("tea"), kInvalidItem);
  EXPECT_TRUE(dictionary.Contains("milk"));
  EXPECT_FALSE(dictionary.Contains("tea"));
}

TEST(ItemDictionary, NameLookup) {
  ItemDictionary dictionary;
  dictionary.GetOrAdd("sponge");
  EXPECT_EQ(dictionary.Name(0).ValueOrDie(), "sponge");
  EXPECT_TRUE(dictionary.Name(5).status().IsOutOfRange());
}

TEST(ItemDictionary, NameOrPlaceholder) {
  ItemDictionary dictionary;
  dictionary.GetOrAdd("sponge");
  EXPECT_EQ(dictionary.NameOrPlaceholder(0), "sponge");
  EXPECT_EQ(dictionary.NameOrPlaceholder(42), "item#42");
}

TEST(ItemDictionary, EmptyStateAndEmptyName) {
  ItemDictionary dictionary;
  EXPECT_TRUE(dictionary.empty());
  EXPECT_EQ(dictionary.GetOrAdd(""), 0u);  // empty names are legal
  EXPECT_TRUE(dictionary.Contains(""));
  EXPECT_FALSE(dictionary.empty());
}

TEST(ItemDictionary, NamesVectorIndexableByItemId) {
  ItemDictionary dictionary;
  dictionary.GetOrAdd("a");
  dictionary.GetOrAdd("b");
  ASSERT_EQ(dictionary.names().size(), 2u);
  EXPECT_EQ(dictionary.names()[1], "b");
}

TEST(ItemDictionary, ManyItemsStayConsistent) {
  ItemDictionary dictionary;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(dictionary.GetOrAdd("item-" + std::to_string(i)),
              static_cast<ItemId>(i));
  }
  EXPECT_EQ(dictionary.Find("item-9999"), 9999u);
  EXPECT_EQ(dictionary.Name(1234).ValueOrDie(), "item-1234");
}

}  // namespace
}  // namespace retail
}  // namespace churnlab
