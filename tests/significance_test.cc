#include "core/significance.h"

#include <cmath>

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

SignificanceOptions Alpha(double alpha) {
  SignificanceOptions options;
  options.alpha = alpha;
  return options;
}

TEST(SignificanceTracker, NeverSeenSymbolHasZeroSignificance) {
  SignificanceTracker tracker(Alpha(2.0));
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(7), 0.0);
  tracker.AdvanceWindow({1, 2});
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(7), 0.0);
  EXPECT_DOUBLE_EQ(tracker.TotalSignificance(),
                   tracker.SignificanceOf(1) + tracker.SignificanceOf(2));
}

TEST(SignificanceTracker, MatchesClosedFormAlphaPowerCMinusL) {
  // Windows: {p}, {p}, {}, {p} -> at k=4, c=3, l=1, S = 2^(3-1) = 4.
  SignificanceTracker tracker(Alpha(2.0));
  tracker.AdvanceWindow({5});
  tracker.AdvanceWindow({5});
  tracker.AdvanceWindow({});
  tracker.AdvanceWindow({5});
  EXPECT_EQ(tracker.ContainCount(5), 3);
  EXPECT_EQ(tracker.MissCount(5), 1);
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(5), 4.0);
}

TEST(SignificanceTracker, SignificanceBelowOneWhenMissesDominate) {
  SignificanceTracker tracker(Alpha(2.0));
  tracker.AdvanceWindow({3});
  tracker.AdvanceWindow({});
  tracker.AdvanceWindow({});
  // c=1, l=2 -> 2^-1 = 0.5.
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(3), 0.5);
}

TEST(SignificanceTracker, AlphaOneMakesAllSeenSymbolsEqual) {
  SignificanceTracker tracker(Alpha(1.0));
  tracker.AdvanceWindow({1});
  tracker.AdvanceWindow({1, 2});
  tracker.AdvanceWindow({2});
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(1), 1.0);
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(2), 1.0);
  EXPECT_DOUBLE_EQ(tracker.TotalSignificance(), 2.0);
}

TEST(SignificanceTracker, MakeRejectsNonPositiveAlpha) {
  EXPECT_FALSE(SignificanceTracker::Make(Alpha(0.0)).ok());
  EXPECT_FALSE(SignificanceTracker::Make(Alpha(-1.0)).ok());
  EXPECT_TRUE(SignificanceTracker::Make(Alpha(0.5)).ok());
}

TEST(SignificanceTracker, ClampPreventsOverflowOnLongHistories) {
  SignificanceOptions options;
  options.alpha = 2.0;
  options.max_abs_exponent = 10.0;
  SignificanceTracker tracker(options);
  for (int i = 0; i < 100; ++i) tracker.AdvanceWindow({1});
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(1), std::pow(2.0, 10.0));
  SignificanceTracker misses(options);
  misses.AdvanceWindow({1});
  for (int i = 0; i < 100; ++i) misses.AdvanceWindow({});
  EXPECT_DOUBLE_EQ(misses.SignificanceOf(1), std::pow(2.0, -10.0));
}

TEST(SignificanceTracker, SeenSymbolsSortedAscending) {
  SignificanceTracker tracker(Alpha(2.0));
  tracker.AdvanceWindow({9, 1, 4});
  const std::vector<Symbol> seen = tracker.SeenSymbols();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 4u);
  EXPECT_EQ(seen[2], 9u);
}

TEST(SignificanceTracker, EwmaScoresTrackPresence) {
  SignificanceOptions options;
  options.kind = SignificanceKind::kEwma;
  options.ewma_lambda = 0.5;
  SignificanceTracker tracker(options);
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(1), 0.0);
  tracker.AdvanceWindow({1});
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(1), 0.5);  // (1-lambda)
  tracker.AdvanceWindow({1});
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(1), 0.75);  // 0.5*0.5 + 0.5
  tracker.AdvanceWindow({});
  EXPECT_DOUBLE_EQ(tracker.SignificanceOf(1), 0.375);  // decayed
  EXPECT_DOUBLE_EQ(tracker.TotalSignificance(), 0.375);
}

TEST(SignificanceTracker, EwmaScoresBoundedByOne) {
  SignificanceOptions options;
  options.kind = SignificanceKind::kEwma;
  options.ewma_lambda = 0.7;
  SignificanceTracker tracker(options);
  for (int k = 0; k < 200; ++k) tracker.AdvanceWindow({1});
  EXPECT_LE(tracker.SignificanceOf(1), 1.0);
  EXPECT_GT(tracker.SignificanceOf(1), 0.99);
}

TEST(SignificanceTracker, EwmaRejectsBadLambda) {
  SignificanceOptions options;
  options.kind = SignificanceKind::kEwma;
  options.ewma_lambda = 0.0;
  EXPECT_FALSE(SignificanceTracker::Make(options).ok());
  options.ewma_lambda = 1.0;
  EXPECT_FALSE(SignificanceTracker::Make(options).ok());
  options.ewma_lambda = 0.5;
  EXPECT_TRUE(SignificanceTracker::Make(options).ok());
}

// Property: significance is monotone in the number of containing windows,
// holding the total window count fixed.
class SignificanceMonotonicityTest : public ::testing::TestWithParam<double> {
};

TEST_P(SignificanceMonotonicityTest, MoreContainingWindowsMoreSignificance) {
  const double alpha = GetParam();
  const int total_windows = 8;
  double previous = -1.0;
  for (int contains = 1; contains <= total_windows; ++contains) {
    SignificanceTracker tracker(Alpha(alpha));
    for (int k = 0; k < total_windows; ++k) {
      tracker.AdvanceWindow(k < contains ? std::vector<Symbol>{1}
                                         : std::vector<Symbol>{});
    }
    const double significance = tracker.SignificanceOf(1);
    if (alpha > 1.0) {
      EXPECT_GT(significance, previous) << "contains=" << contains;
    } else if (alpha == 1.0) {
      EXPECT_DOUBLE_EQ(significance, 1.0);
    }
    previous = significance;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, SignificanceMonotonicityTest,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace core
}  // namespace churnlab
