#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

std::vector<std::vector<std::string>> ReadAll(CsvReader* reader) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader->ReadRow(&row)) rows.push_back(row);
  return rows;
}

TEST(CsvReader, SimpleRows) {
  CsvReader reader = CsvReader::FromString("a,b,c\n1,2,3\n");
  const auto rows = ReadAll(&reader);
  ASSERT_TRUE(reader.status().ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvReader, MissingFinalNewline) {
  CsvReader reader = CsvReader::FromString("a,b\nc,d");
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReader, CrLfLineEndings) {
  CsvReader reader = CsvReader::FromString("a,b\r\nc,d\r\n");
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReader, QuotedFieldWithDelimiter) {
  CsvReader reader = CsvReader::FromString("\"a,b\",c\n");
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvReader, EscapedQuotes) {
  CsvReader reader = CsvReader::FromString("\"say \"\"hi\"\"\",x\n");
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvReader, NewlineInsideQuotes) {
  CsvReader reader = CsvReader::FromString("\"line1\nline2\",x\n");
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvReader, EmptyFields) {
  CsvReader reader = CsvReader::FromString(",,\n");
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReader, UnterminatedQuoteSetsError) {
  CsvReader reader = CsvReader::FromString("\"oops");
  std::vector<std::string> row;
  EXPECT_FALSE(reader.ReadRow(&row));
  EXPECT_TRUE(reader.status().IsInvalidArgument());
}

TEST(CsvReader, CustomDelimiter) {
  CsvReader reader = CsvReader::FromString("a;b;c\n", ';');
  const auto rows = ReadAll(&reader);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 3u);
}

TEST(CsvReader, RowNumberTracksRows) {
  CsvReader reader = CsvReader::FromString("a\nb\nc\n");
  std::vector<std::string> row;
  EXPECT_EQ(reader.row_number(), 0u);
  reader.ReadRow(&row);
  EXPECT_EQ(reader.row_number(), 1u);
  reader.ReadRow(&row);
  reader.ReadRow(&row);
  EXPECT_EQ(reader.row_number(), 3u);
}

TEST(CsvReader, OpenMissingFileFails) {
  EXPECT_TRUE(CsvReader::Open("/nonexistent/nope.csv").status().IsIOError());
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  CsvWriter writer = CsvWriter::ToStringBuffer();
  ASSERT_TRUE(writer.WriteRow({"plain", "with,comma", "with\"quote",
                               "with\nnewline"}).ok());
  EXPECT_EQ(writer.ToString(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriter, RoundTripsThroughReader) {
  CsvWriter writer = CsvWriter::ToStringBuffer();
  const std::vector<std::vector<std::string>> original = {
      {"a", "b,c", "d\"e"},
      {"", "multi\nline", "z"},
  };
  for (const auto& row : original) ASSERT_TRUE(writer.WriteRow(row).ok());
  CsvReader reader = CsvReader::FromString(writer.ToString());
  EXPECT_EQ(ReadAll(&reader), original);
  EXPECT_TRUE(reader.status().ok());
}

TEST(CsvWriter, FileWriteAndReadBack) {
  const std::string path = testing::TempDir() + "/churnlab_csv_test.csv";
  {
    auto writer = CsvWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRow({"x", "y"}).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = CsvReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const auto rows = ReadAll(&reader.ValueOrDie());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
  std::remove(path.c_str());
}

TEST(CsvWriter, LargeOutputFlushesIncrementally) {
  const std::string path = testing::TempDir() + "/churnlab_csv_large.csv";
  {
    auto writer = CsvWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    const std::string big_cell(4096, 'x');
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(writer->WriteRow({big_cell}).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
  std::ifstream file(path, std::ios::ate | std::ios::binary);
  EXPECT_GT(file.tellg(), 4096 * 1000);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace churnlab
