// Unit tests for the serving subsystem: the sharded CustomerStateStore,
// ScoringFleet batch ingestion, and snapshot robustness (corruption,
// truncation, version and shard-count mismatches).

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "serve/fleet.h"
#include "serve/state_store.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

StateStoreOptions SmallStoreOptions() {
  StateStoreOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 4;
  return options;
}

FleetOptions SmallFleetOptions() {
  FleetOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 4;
  options.num_threads = 1;
  // Product granularity: no taxonomy needed, symbols are item ids.
  options.granularity = retail::Granularity::kProduct;
  // Alert eagerly so the tests see alerts on short streams.
  options.policy.beta = 0.5;
  options.policy.warmup_windows = 1;
  options.policy.drop_threshold = 2.0;  // disable the drop rule
  return options;
}

Receipt MakeReceipt(CustomerId customer, Day day,
                    std::vector<retail::ItemId> items) {
  Receipt receipt;
  receipt.customer = customer;
  receipt.day = day;
  receipt.spend = 1.0;
  receipt.items = std::move(items);
  return receipt;
}

TEST(CustomerStateStore, MakeRejectsBadOptions) {
  StateStoreOptions zero_shards = SmallStoreOptions();
  zero_shards.num_shards = 0;
  EXPECT_FALSE(CustomerStateStore::Make(zero_shards).ok());

  StateStoreOptions bad_scorer = SmallStoreOptions();
  bad_scorer.scorer.window_span_days = 0;
  EXPECT_FALSE(CustomerStateStore::Make(bad_scorer).ok());
}

TEST(CustomerStateStore, ShardAssignmentIsStable) {
  auto store_a = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  auto store_b = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  for (CustomerId customer = 0; customer < 100; ++customer) {
    EXPECT_EQ(store_a.ShardOf(customer), store_b.ShardOf(customer));
    EXPECT_LT(store_a.ShardOf(customer), store_a.num_shards());
  }
}

TEST(CustomerStateStore, GetOrCreateCreatesOncePerCustomer) {
  auto store = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  const CustomerId customer = 7;
  const size_t shard = store.ShardOf(customer);
  store.WithShard(shard, [&](CustomerStateStore::ShardAccessor& access) {
    access.GetOrCreate(customer);
    access.GetOrCreate(customer);
    EXPECT_EQ(access.size(), 1u);
    EXPECT_EQ(access.CustomerAt(0), customer);
    EXPECT_EQ(access.At(0).customer(), customer);
    return 0;
  });
  EXPECT_EQ(store.NumCustomers(), 1u);
}

TEST(CustomerStateStore, ShardStateRoundTrips) {
  auto store = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  // Feed a couple of customers that land in (possibly) different shards.
  const std::vector<CustomerId> customers = {1, 2, 3, 4, 5};
  for (const CustomerId customer : customers) {
    store.WithShard(store.ShardOf(customer),
                    [&](CustomerStateStore::ShardAccessor& access) {
                      auto state = access.GetOrCreate(customer);
                      return state.Observe(10, {1, 2}).ok() ? 0 : 1;
                    });
  }

  auto restored = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  for (size_t shard = 0; shard < store.num_shards(); ++shard) {
    BinaryWriter writer;
    store.SaveShardState(shard, &writer);
    BinaryReader reader(writer.buffer());
    ASSERT_TRUE(restored.LoadShardState(shard, &reader).ok());
    EXPECT_TRUE(reader.AtEnd());
  }
  EXPECT_EQ(restored.NumCustomers(), customers.size());

  // Restored shards serialize to the same bytes as the originals.
  for (size_t shard = 0; shard < store.num_shards(); ++shard) {
    BinaryWriter original, copy;
    store.SaveShardState(shard, &original);
    restored.SaveShardState(shard, &copy);
    EXPECT_EQ(original.buffer(), copy.buffer()) << "shard " << shard;
  }
}

TEST(CustomerStateStore, LoadRejectsCustomerFromWrongShard) {
  auto store = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  const CustomerId customer = 11;
  const size_t home = store.ShardOf(customer);
  store.WithShard(home, [&](CustomerStateStore::ShardAccessor& access) {
    access.GetOrCreate(customer);
    return 0;
  });
  BinaryWriter writer;
  store.SaveShardState(home, &writer);

  // Loading the frame into a different shard is corruption.
  const size_t wrong = (home + 1) % store.num_shards();
  auto target = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  BinaryReader reader(writer.buffer());
  const Status status = target.LoadShardState(wrong, &reader);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError());
}

TEST(CustomerStateStore, GetOrCreateSurvivesThrowingCreation) {
  // Regression: GetOrCreate used to publish the shard-index entry before
  // the customer's storage slot existed; a throwing creation (monitor copy,
  // column growth) left a dangling index entry behind. Creation is now
  // fully rolled back on throw, in both layouts.
  for (const StateLayout layout :
       {StateLayout::kCompact, StateLayout::kHeap}) {
    StateStoreOptions options = SmallStoreOptions();
    options.layout = layout;
    auto store = CustomerStateStore::Make(options).ValueOrDie();
    const CustomerId victim = 7;
    const size_t shard = store.ShardOf(victim);
    CustomerId neighbour = victim + 1;
    while (store.ShardOf(neighbour) != shard) ++neighbour;
    store.WithShard(shard, [&](CustomerStateStore::ShardAccessor& access) {
      auto state = access.GetOrCreate(neighbour);
      return state.Observe(5, {1}).ok() ? 0 : 1;
    });

    FailpointConfig config;
    config.action = FailpointAction::kThrow;
    config.has_key = true;
    config.key = victim;
    FailpointRegistry::Global().Get("serve.state.create")->Arm(config);
    EXPECT_THROW(
        store.WithShard(shard,
                        [&](CustomerStateStore::ShardAccessor& access) {
                          access.GetOrCreate(victim);
                          return 0;
                        }),
        FailpointException);
    FailpointRegistry::Global().Get("serve.state.create")->Disarm();

    // The failed creation left no trace: the neighbour is intact and the
    // victim can be created cleanly afterwards.
    EXPECT_EQ(store.NumCustomers(), 1u) << StateLayoutToString(layout);
    store.WithShard(shard, [&](CustomerStateStore::ShardAccessor& access) {
      EXPECT_EQ(access.size(), 1u);
      EXPECT_EQ(access.CustomerAt(0), neighbour);
      auto state = access.GetOrCreate(victim);
      return state.Observe(6, {1, 2}).ok() ? 0 : 1;
    });
    EXPECT_EQ(store.NumCustomers(), 2u) << StateLayoutToString(layout);
  }
}

TEST(CustomerStateStore, LoadShardStateIsAllOrNothing) {
  // Regression: a bad record mid-frame used to abort the load loop with the
  // earlier records already inserted, leaving a partially loaded shard.
  // Loads now stage into scratch storage and swap only on success.
  auto store = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  const size_t shard = store.ShardOf(1);
  std::vector<CustomerId> same_shard;
  for (CustomerId customer = 1; same_shard.size() < 4; ++customer) {
    if (store.ShardOf(customer) == shard) same_shard.push_back(customer);
  }
  for (const CustomerId customer : same_shard) {
    store.WithShard(shard, [&](CustomerStateStore::ShardAccessor& access) {
      auto state = access.GetOrCreate(customer);
      return state.Observe(10, {1, 2}).ok() ? 0 : 1;
    });
  }
  BinaryWriter writer;
  store.SaveShardState(shard, &writer);
  const std::string frame = writer.buffer();

  // Seed a target store with the full frame, then feed it a truncated
  // copy: the leading records parse, the tail does not. The failed load
  // must leave the previously loaded state untouched.
  auto target = CustomerStateStore::Make(SmallStoreOptions()).ValueOrDie();
  BinaryReader good(frame);
  ASSERT_TRUE(target.LoadShardState(shard, &good).ok());
  BinaryReader truncated(frame.substr(0, frame.size() - 3));
  EXPECT_FALSE(target.LoadShardState(shard, &truncated).ok());

  EXPECT_EQ(target.NumCustomers(), same_shard.size());
  BinaryWriter after;
  target.SaveShardState(shard, &after);
  EXPECT_EQ(after.buffer(), frame);
}

TEST(ScoringFleet, MakeValidatesOptions) {
  FleetOptions zero_shards = SmallFleetOptions();
  zero_shards.num_shards = 0;
  EXPECT_FALSE(ScoringFleet::Make(zero_shards, nullptr).ok());

  // Segment granularity requires a taxonomy.
  FleetOptions segment = SmallFleetOptions();
  segment.granularity = retail::Granularity::kSegment;
  EXPECT_FALSE(ScoringFleet::Make(segment, nullptr).ok());

  // Product granularity does not.
  EXPECT_TRUE(ScoringFleet::Make(SmallFleetOptions(), nullptr).ok());
}

TEST(ScoringFleet, IngestCountsReceiptsAndNewCustomers) {
  auto fleet = ScoringFleet::Make(SmallFleetOptions(), nullptr).ValueOrDie();
  std::vector<Receipt> batch;
  batch.push_back(MakeReceipt(1, 0, {10, 11}));
  batch.push_back(MakeReceipt(2, 0, {10}));
  batch.push_back(MakeReceipt(1, 3, {10, 11}));
  auto report = fleet.IngestBatch(batch).ValueOrDie();
  EXPECT_EQ(report.receipts_ingested, 3u);
  EXPECT_EQ(report.new_customers, 2u);
  EXPECT_EQ(fleet.NumCustomers(), 2u);

  // Second batch: same customers, no new ones.
  std::vector<Receipt> next;
  next.push_back(MakeReceipt(2, 8, {10}));
  report = fleet.IngestBatch(next).ValueOrDie();
  EXPECT_EQ(report.new_customers, 0u);
  EXPECT_EQ(fleet.NumCustomers(), 2u);
}

TEST(ScoringFleet, IngestQuarantinesInvalidCustomerAndStaleReceipt) {
  // Default quarantine mode: malformed receipts land in
  // BatchReport::rejected instead of failing the whole batch.
  auto fleet = ScoringFleet::Make(SmallFleetOptions(), nullptr).ValueOrDie();
  std::vector<Receipt> bad_id;
  bad_id.push_back(MakeReceipt(retail::kInvalidCustomer, 0, {1}));
  auto report = fleet.IngestBatch(bad_id).ValueOrDie();
  EXPECT_EQ(report.receipts_ingested, 0u);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0].customer, retail::kInvalidCustomer);
  EXPECT_EQ(report.rejected[0].batch_index, 0u);
  EXPECT_TRUE(report.rejected[0].reason.IsInvalidArgument());
  EXPECT_TRUE(report.poisoned.empty()) << "a bad receipt is not a bad shard";

  std::vector<Receipt> forward;
  forward.push_back(MakeReceipt(1, 50, {1}));
  ASSERT_TRUE(fleet.IngestBatch(forward).ok());
  // A receipt older than the customer's stream head violates chronology:
  // quarantined, with the good receipt in the same batch still ingested.
  std::vector<Receipt> stale;
  stale.push_back(MakeReceipt(1, 10, {1}));
  stale.push_back(MakeReceipt(1, 60, {1}));
  report = fleet.IngestBatch(stale).ValueOrDie();
  EXPECT_EQ(report.receipts_ingested, 1u);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0].batch_index, 0u);
  EXPECT_EQ(report.rejected[0].day, 10);
  EXPECT_TRUE(report.rejected[0].reason.IsInvalidArgument());
}

TEST(ScoringFleet, IngestFailsHardWithQuarantineDisabled) {
  // quarantine_malformed = false restores the strict pre-quarantine
  // contract: any malformed receipt fails the batch.
  FleetOptions options = SmallFleetOptions();
  options.quarantine_malformed = false;
  auto fleet = ScoringFleet::Make(options, nullptr).ValueOrDie();
  std::vector<Receipt> bad_id;
  bad_id.push_back(MakeReceipt(retail::kInvalidCustomer, 0, {1}));
  EXPECT_FALSE(fleet.IngestBatch(bad_id).ok());

  std::vector<Receipt> forward;
  forward.push_back(MakeReceipt(1, 50, {1}));
  ASSERT_TRUE(fleet.IngestBatch(forward).ok());
  std::vector<Receipt> stale;
  stale.push_back(MakeReceipt(1, 10, {1}));
  const auto report = fleet.IngestBatch(stale);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(ScoringFleet, RaisesLowStabilityAlertWhenBasketCollapses) {
  // Customer buys {1, 2, 3} every week for four 30-day windows, then keeps
  // visiting but buys only item 9: the habitual products disappear and
  // stability collapses below beta.
  auto fleet = ScoringFleet::Make(SmallFleetOptions(), nullptr).ValueOrDie();
  std::vector<Receipt> stream;
  for (Day day = 0; day < 120; day += 7) {
    stream.push_back(MakeReceipt(5, day, {1, 2, 3}));
  }
  for (Day day = 120; day < 240; day += 7) {
    stream.push_back(MakeReceipt(5, day, {9}));
  }
  auto report = fleet.IngestBatch(stream).ValueOrDie();
  auto tail = fleet.FinishAll().ValueOrDie();
  std::vector<FleetAlert> alerts = report.alerts;
  alerts.insert(alerts.end(), tail.alerts.begin(), tail.alerts.end());
  ASSERT_FALSE(alerts.empty());
  for (const FleetAlert& alert : alerts) {
    EXPECT_EQ(alert.customer, 5u);
  }
  bool saw_low = false;
  for (const FleetAlert& alert : alerts) {
    if (alert.alert.kind == core::StabilityAlert::Kind::kLowStability) {
      saw_low = true;
      EXPECT_LE(alert.alert.stability, 0.5);
    }
  }
  EXPECT_TRUE(saw_low);
}

TEST(ScoringFleet, FinishAllOnEmptyFleetIsANoOp) {
  auto fleet = ScoringFleet::Make(SmallFleetOptions(), nullptr).ValueOrDie();
  auto report = fleet.FinishAll().ValueOrDie();
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_EQ(fleet.NumCustomers(), 0u);
}

// --- snapshot robustness ---------------------------------------------------

std::string SnapshotOf(const ScoringFleet& fleet) {
  BinaryWriter writer;
  EXPECT_TRUE(fleet.SaveSnapshot(&writer).ok());
  return writer.buffer();
}

ScoringFleet FleetWithSomeState() {
  auto fleet = ScoringFleet::Make(SmallFleetOptions(), nullptr).ValueOrDie();
  std::vector<Receipt> batch;
  for (CustomerId customer = 1; customer <= 8; ++customer) {
    for (Day day = 0; day < 90; day += 10) {
      batch.push_back(MakeReceipt(customer, day, {customer, 100}));
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const Receipt& a, const Receipt& b) { return a.day < b.day; });
  EXPECT_TRUE(fleet.IngestBatch(batch).ok());
  return fleet;
}

TEST(FleetSnapshot, RoundTripsThroughBuffer) {
  ScoringFleet fleet = FleetWithSomeState();
  const std::string snapshot = SnapshotOf(fleet);
  BinaryReader reader(snapshot);
  auto restored = ScoringFleet::Restore(&reader, nullptr).ValueOrDie();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.NumCustomers(), fleet.NumCustomers());
  EXPECT_EQ(SnapshotOf(restored), snapshot);
}

TEST(FleetSnapshot, RestoreRejectsBadMagic) {
  std::string snapshot = SnapshotOf(FleetWithSomeState());
  snapshot[0] = 'X';
  BinaryReader reader(snapshot);
  const auto restored = ScoringFleet::Restore(&reader, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsIOError());
}

TEST(FleetSnapshot, RestoreRejectsTruncation) {
  const std::string snapshot = SnapshotOf(FleetWithSomeState());
  // Every strict prefix must fail — never crash, never succeed.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{10}, snapshot.size() / 2,
                     snapshot.size() - 1}) {
    BinaryReader reader(snapshot.substr(0, cut));
    EXPECT_FALSE(ScoringFleet::Restore(&reader, nullptr).ok())
        << "prefix of " << cut << " bytes";
  }
}

TEST(FleetSnapshot, RestoreDetectsCorruptedShardFrame) {
  const std::string snapshot = SnapshotOf(FleetWithSomeState());
  // Flip one byte in the back half (inside some shard frame's payload —
  // the header lives at the front). The CRC must catch it.
  std::string corrupted = snapshot;
  corrupted[corrupted.size() - 3] ^= 0x40;
  BinaryReader reader(corrupted);
  const auto restored = ScoringFleet::Restore(&reader, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsIOError());
}

TEST(FleetSnapshot, RestoreRejectsTrailingGarbage) {
  std::string snapshot = SnapshotOf(FleetWithSomeState());
  snapshot += "extra";
  BinaryReader reader(snapshot);
  EXPECT_FALSE(ScoringFleet::Restore(&reader, nullptr).ok());
}

TEST(FleetSnapshot, RestoredFleetContinuesLikeTheOriginal) {
  ScoringFleet fleet = FleetWithSomeState();
  BinaryReader reader(SnapshotOf(fleet));
  auto restored = ScoringFleet::Restore(&reader, nullptr).ValueOrDie();

  std::vector<Receipt> more;
  for (CustomerId customer = 1; customer <= 8; ++customer) {
    more.push_back(MakeReceipt(customer, 200, {customer}));
  }
  auto original_report = fleet.IngestBatch(more).ValueOrDie();
  auto restored_report = restored.IngestBatch(more).ValueOrDie();
  ASSERT_EQ(original_report.alerts.size(), restored_report.alerts.size());
  EXPECT_EQ(SnapshotOf(fleet), SnapshotOf(restored));
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
