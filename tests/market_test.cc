#include "datagen/market.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace datagen {
namespace {

MarketConfig SmallConfig() {
  MarketConfig config;
  config.num_departments = 4;
  config.num_segments = 20;
  config.num_products = 100;
  return config;
}

TEST(MarketGenerator, ProducesRequestedCounts) {
  Rng rng(1);
  const Market market = MarketGenerator::Generate(SmallConfig(), &rng)
                            .ValueOrDie();
  EXPECT_EQ(market.num_products(), 100u);
  EXPECT_EQ(market.num_segments(), 20u);
  EXPECT_EQ(market.taxonomy.num_departments(), 4u);
  EXPECT_EQ(market.item_prices.size(), 100u);
  EXPECT_EQ(market.item_popularity.size(), 100u);
  EXPECT_EQ(market.segment_items.size(), 20u);
  EXPECT_EQ(market.segment_popularity.size(), 20u);
}

TEST(MarketGenerator, EverySegmentHasAtLeastOneProduct) {
  Rng rng(2);
  const Market market =
      MarketGenerator::Generate(SmallConfig(), &rng).ValueOrDie();
  size_t total = 0;
  for (const auto& items : market.segment_items) {
    EXPECT_GE(items.size(), 1u);
    total += items.size();
  }
  EXPECT_EQ(total, market.num_products());
}

TEST(MarketGenerator, EveryProductAssignedToItsSegment) {
  Rng rng(3);
  const Market market =
      MarketGenerator::Generate(SmallConfig(), &rng).ValueOrDie();
  EXPECT_TRUE(market.taxonomy.Validate().ok());
  EXPECT_EQ(market.taxonomy.num_assigned_items(), market.num_products());
  for (retail::SegmentId segment = 0; segment < 20; ++segment) {
    for (const retail::ItemId item : market.segment_items[segment]) {
      EXPECT_EQ(market.taxonomy.SegmentOf(item), segment);
    }
  }
}

TEST(MarketGenerator, PaperStaplesAlwaysPresent) {
  Rng rng(4);
  const Market market =
      MarketGenerator::Generate(SmallConfig(), &rng).ValueOrDie();
  for (const char* name : {"coffee", "milk", "sponge", "cheese"}) {
    EXPECT_NE(market.FindSegment(name), retail::kInvalidSegment) << name;
  }
}

TEST(MarketGenerator, SyntheticSegmentNamesBeyondBuiltInList) {
  MarketConfig config = SmallConfig();
  config.num_segments = 200;  // exceeds the grocery name list
  config.num_products = 400;
  Rng rng(5);
  const Market market = MarketGenerator::Generate(config, &rng).ValueOrDie();
  EXPECT_NE(market.FindSegment("segment-150"), retail::kInvalidSegment);
}

TEST(MarketGenerator, PricesArePositive) {
  Rng rng(6);
  const Market market =
      MarketGenerator::Generate(SmallConfig(), &rng).ValueOrDie();
  for (const double price : market.item_prices) EXPECT_GT(price, 0.0);
  EXPECT_GT(market.PriceOf(0), 0.0);
  EXPECT_DOUBLE_EQ(market.PriceOf(9999), 0.0);
}

TEST(MarketGenerator, PopularityHeadHeavierThanTail) {
  MarketConfig config = SmallConfig();
  config.segment_zipf_s = 1.0;
  Rng rng(7);
  const Market market = MarketGenerator::Generate(config, &rng).ValueOrDie();
  // Average popularity of the first five segments should dominate the last
  // five (noise is mild relative to the rank weights).
  double head = 0.0;
  double tail = 0.0;
  for (size_t s = 0; s < 5; ++s) head += market.segment_popularity[s];
  for (size_t s = 15; s < 20; ++s) tail += market.segment_popularity[s];
  EXPECT_GT(head, tail);
}

TEST(MarketGenerator, DeterministicGivenRngState) {
  Rng rng_a(11);
  Rng rng_b(11);
  const Market a = MarketGenerator::Generate(SmallConfig(), &rng_a)
                       .ValueOrDie();
  const Market b = MarketGenerator::Generate(SmallConfig(), &rng_b)
                       .ValueOrDie();
  EXPECT_EQ(a.item_prices, b.item_prices);
  EXPECT_EQ(a.segment_popularity, b.segment_popularity);
}

TEST(MarketGenerator, ValidationErrors) {
  Rng rng(13);
  MarketConfig no_products = SmallConfig();
  no_products.num_products = 0;
  EXPECT_FALSE(MarketGenerator::Generate(no_products, &rng).ok());
  MarketConfig fewer_products_than_segments = SmallConfig();
  fewer_products_than_segments.num_products = 10;
  EXPECT_FALSE(
      MarketGenerator::Generate(fewer_products_than_segments, &rng).ok());
  MarketConfig negative_zipf = SmallConfig();
  negative_zipf.segment_zipf_s = -1.0;
  EXPECT_FALSE(MarketGenerator::Generate(negative_zipf, &rng).ok());
}

TEST(MarketGenerator, FindItemByName) {
  Rng rng(17);
  const Market market =
      MarketGenerator::Generate(SmallConfig(), &rng).ValueOrDie();
  const retail::SegmentId coffee = market.FindSegment("coffee");
  ASSERT_NE(coffee, retail::kInvalidSegment);
  ASSERT_FALSE(market.segment_items[coffee].empty());
  const retail::ItemId first_coffee = market.segment_items[coffee].front();
  EXPECT_EQ(market.FindItem("coffee-0"), first_coffee);
  EXPECT_EQ(market.FindItem("nonexistent"), retail::kInvalidItem);
}

}  // namespace
}  // namespace datagen
}  // namespace churnlab
