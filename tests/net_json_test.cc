// Ingest-body parsing and response rendering for the HTTP front end. The
// parser is the quarantine boundary for malformed client JSON, so error
// messages must name the offending receipt and hostile shapes must fail
// fast without deep recursion or large allocation.

#include "net/json_codec.h"

#include <gtest/gtest.h>

#include <string>

namespace churnlab {
namespace net {
namespace {

TEST(ParseReceiptBatch, ParsesFullReceipts) {
  const Result<std::vector<retail::Receipt>> parsed = ParseReceiptBatch(
      R"({"receipts":[{"customer":17,"day":360,"spend":12.5,"items":[3,19]},)"
      R"({"customer":2,"day":1}]})",
      /*max_receipts=*/100);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<retail::Receipt>& receipts = *parsed;
  ASSERT_EQ(receipts.size(), 2u);
  EXPECT_EQ(receipts[0].customer, 17u);
  EXPECT_EQ(receipts[0].day, 360);
  EXPECT_DOUBLE_EQ(receipts[0].spend, 12.5);
  EXPECT_EQ(receipts[0].items, (std::vector<retail::ItemId>{3, 19}));
  EXPECT_EQ(receipts[1].customer, 2u);
  EXPECT_EQ(receipts[1].day, 1);
  EXPECT_TRUE(receipts[1].items.empty());
}

TEST(ParseReceiptBatch, FieldOrderIsFree) {
  const Result<std::vector<retail::Receipt>> parsed = ParseReceiptBatch(
      R"({"receipts":[{"items":[5],"day":7,"spend":1.0,"customer":9}]})",
      /*max_receipts=*/10);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)[0].customer, 9u);
  EXPECT_EQ((*parsed)[0].day, 7);
}

TEST(ParseReceiptBatch, ToleratesWhitespace) {
  const Result<std::vector<retail::Receipt>> parsed = ParseReceiptBatch(
      " { \"receipts\" : [ { \"customer\" : 1 , \"day\" : 2 } ] } ",
      /*max_receipts=*/10);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(ParseReceiptBatch, EmptyBatchIsValid) {
  const Result<std::vector<retail::Receipt>> parsed =
      ParseReceiptBatch(R"({"receipts":[]})", /*max_receipts=*/10);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
}

TEST(ParseReceiptBatch, UnknownKeyRejectedWithReceiptIndex) {
  const Result<std::vector<retail::Receipt>> parsed = ParseReceiptBatch(
      R"({"receipts":[{"customer":1,"day":2},{"customer":3,"day":4,"x":5}]})",
      /*max_receipts=*/10);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().message().find("receipt 1"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ParseReceiptBatch, MissingRequiredFieldRejected) {
  for (const char* body : {
           R"({"receipts":[{"day":2}]})",       // no customer
           R"({"receipts":[{"customer":1}]})",  // no day
       }) {
    const Result<std::vector<retail::Receipt>> parsed =
        ParseReceiptBatch(body, /*max_receipts=*/10);
    ASSERT_FALSE(parsed.ok()) << body;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << body;
    EXPECT_NE(parsed.status().message().find("receipt 0"), std::string::npos)
        << parsed.status().ToString();
  }
}

TEST(ParseReceiptBatch, SyntaxErrorsRejected) {
  for (const char* body : {
           "",
           "null",
           "[]",
           R"({"receipts":)",
           R"({"receipts":[{"customer":1,"day":2})",
           R"({"receipts":[{"customer":,"day":2}]})",
           R"({"wrong":[]})",
       }) {
    const Result<std::vector<retail::Receipt>> parsed =
        ParseReceiptBatch(body, /*max_receipts=*/10);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << body;
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << body << ": " << parsed.status().ToString();
  }
}

TEST(ParseReceiptBatch, TrailingBytesRejected) {
  const Result<std::vector<retail::Receipt>> parsed = ParseReceiptBatch(
      R"({"receipts":[{"customer":1,"day":2}]} extra)", /*max_receipts=*/10);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument())
      << parsed.status().ToString();
}

TEST(ParseReceiptBatch, BatchBeyondLimitIsOutOfRange) {
  std::string body = R"({"receipts":[)";
  for (int i = 0; i < 4; ++i) {
    if (i > 0) body += ',';
    body += R"({"customer":1,"day":2})";
  }
  body += "]}";
  ASSERT_TRUE(ParseReceiptBatch(body, /*max_receipts=*/4).ok());
  const Result<std::vector<retail::Receipt>> parsed =
      ParseReceiptBatch(body, /*max_receipts=*/3);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsOutOfRange()) << parsed.status().ToString();
}

TEST(ParseReceiptBatch, HostileNestingFailsFast) {
  // A megabyte of open brackets must be rejected by shape checking, not
  // recursed into — the scanner is iterative with O(1) stack.
  std::string body = R"({"receipts":)";
  body.append(1u << 20, '[');
  const Result<std::vector<retail::Receipt>> parsed =
      ParseReceiptBatch(body, /*max_receipts=*/10);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument())
      << parsed.status().ToString();
}

TEST(WriteBatchReportJson, CarriesCountsAndSequence) {
  serve::BatchReport report;
  report.receipts_ingested = 41;
  report.new_customers = 3;
  const std::string json = WriteBatchReportJson(report, /*first_sequence=*/777);
  EXPECT_NE(json.find("\"receipts_ingested\":41"), std::string::npos) << json;
  EXPECT_NE(json.find("\"new_customers\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sequence\":777"), std::string::npos) << json;
}

TEST(WriteBatchReportJson, QuarantineReasonsSurface) {
  serve::BatchReport report;
  serve::RejectedReceipt rejected;
  rejected.customer = 5;
  rejected.batch_index = 2;
  rejected.day = 9;
  rejected.reason = Status::InvalidArgument("day moves backwards");
  report.rejected.push_back(rejected);
  const std::string json = WriteBatchReportJson(report, 0);
  EXPECT_NE(json.find("day moves backwards"), std::string::npos) << json;
  EXPECT_NE(json.find("\"customer\":5"), std::string::npos) << json;
}

TEST(WriteCustomerJson, CarriesAllFields) {
  serve::CustomerQuery query;
  query.customer = 12;
  query.shard = 4;
  query.stability = 0.75;
  query.state_bytes = 96;
  const std::string json = WriteCustomerJson(query);
  EXPECT_NE(json.find("\"customer\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("0.75"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state_bytes\":96"), std::string::npos) << json;
}

TEST(WriteHealthJson, CarriesAggregatesAndShards) {
  serve::FleetHealth health;
  health.receipts_total = 100;
  health.customers_total = 7;
  health.poisoned_shards = 1;
  serve::ShardHealthStats shard;
  shard.shard = 0;
  shard.receipts = 100;
  health.shards.push_back(shard);
  const std::string json = WriteHealthJson(health);
  EXPECT_NE(json.find("\"receipts_total\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"customers_total\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"poisoned_shards\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards\""), std::string::npos) << json;
}

TEST(WriteErrorJson, UsesStatusCodeNameAndEscapesMessage) {
  const std::string json =
      WriteErrorJson(Status::InvalidArgument("bad \"quote\" here"));
  EXPECT_NE(json.find("\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("Invalid argument"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos) << json;
}

TEST(WriteSnapshotJson, CarriesPath) {
  const std::string json = WriteSnapshotJson("/tmp/fleet.snap");
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("/tmp/fleet.snap"), std::string::npos) << json;
}

}  // namespace
}  // namespace net
}  // namespace churnlab
