#include "datagen/simulator.h"

#include <gtest/gtest.h>

#include "datagen/population.h"

namespace churnlab {
namespace datagen {
namespace {

Market MakeMarket(uint64_t seed = 1) {
  MarketConfig config;
  config.num_departments = 4;
  config.num_segments = 30;
  config.num_products = 120;
  Rng rng(seed);
  return MarketGenerator::Generate(config, &rng).ValueOrDie();
}

std::vector<CustomerProfile> MakeProfiles(const Market& market,
                                          size_t loyal, size_t defecting,
                                          uint64_t seed = 2) {
  PopulationConfig config;
  config.num_loyal = loyal;
  config.num_defecting = defecting;
  config.min_repertoire_segments = 8;
  config.max_repertoire_segments = 16;
  Rng rng(seed);
  return PopulationBuilder::Build(config, market, 28, &rng).ValueOrDie();
}

TEST(RetailSimulator, ProducesFinalizedLabelledDataset) {
  const Market market = MakeMarket();
  const auto profiles = MakeProfiles(market, 5, 5);
  Rng rng(3);
  const retail::Dataset dataset =
      RetailSimulator::Simulate(market, profiles, 28, &rng).ValueOrDie();
  EXPECT_TRUE(dataset.store().finalized());
  EXPECT_EQ(dataset.store().num_customers(), 10u);
  EXPECT_EQ(dataset.CustomersWithCohort(retail::Cohort::kLoyal).size(), 5u);
  EXPECT_EQ(dataset.CustomersWithCohort(retail::Cohort::kDefecting).size(),
            5u);
  EXPECT_EQ(dataset.items().size(), market.num_products());
  EXPECT_EQ(dataset.taxonomy().num_segments(), market.num_segments());
}

TEST(RetailSimulator, ReceiptsStayWithinHorizonAndSpendPositive) {
  const Market market = MakeMarket();
  const auto profiles = MakeProfiles(market, 4, 4);
  Rng rng(4);
  const retail::Dataset dataset =
      RetailSimulator::Simulate(market, profiles, 12, &rng).ValueOrDie();
  for (const retail::Receipt& receipt : dataset.store().AllReceipts()) {
    EXPECT_GE(receipt.day, 0);
    EXPECT_LT(receipt.day, 12 * retail::kDaysPerMonth);
    EXPECT_GT(receipt.spend, 0.0);
    EXPECT_FALSE(receipt.items.empty());
  }
}

TEST(RetailSimulator, DeterministicGivenSeed) {
  const Market market = MakeMarket();
  const auto profiles = MakeProfiles(market, 3, 3);
  Rng rng_a(7);
  Rng rng_b(7);
  const retail::Dataset a =
      RetailSimulator::Simulate(market, profiles, 10, &rng_a).ValueOrDie();
  const retail::Dataset b =
      RetailSimulator::Simulate(market, profiles, 10, &rng_b).ValueOrDie();
  ASSERT_EQ(a.store().num_receipts(), b.store().num_receipts());
  const auto receipts_a = a.store().AllReceipts();
  const auto receipts_b = b.store().AllReceipts();
  for (size_t i = 0; i < receipts_a.size(); ++i) {
    EXPECT_EQ(receipts_a[i].customer, receipts_b[i].customer);
    EXPECT_EQ(receipts_a[i].day, receipts_b[i].day);
    EXPECT_EQ(receipts_a[i].items, receipts_b[i].items);
    EXPECT_DOUBLE_EQ(receipts_a[i].spend, receipts_b[i].spend);
  }
}

TEST(RetailSimulator, DefectorsBuyLessAfterOnset) {
  const Market market = MakeMarket();
  auto profiles = MakeProfiles(market, 0, 30);
  // Strengthen the attrition so the effect is unambiguous in a small sample.
  for (CustomerProfile& profile : profiles) {
    profile.attrition_onset_month = 14;
    profile.visit_decay_per_month = 0.7;
    profile.prodrome_months = 0;
  }
  Rng rng(9);
  const retail::Dataset dataset =
      RetailSimulator::Simulate(market, profiles, 28, &rng).ValueOrDie();
  size_t receipts_before = 0;
  size_t receipts_after = 0;
  size_t items_before = 0;
  size_t items_after = 0;
  for (const retail::Receipt& receipt : dataset.store().AllReceipts()) {
    if (retail::DayToMonth(receipt.day) < 14) {
      ++receipts_before;
      items_before += receipt.items.size();
    } else {
      ++receipts_after;
      items_after += receipt.items.size();
    }
  }
  // Same number of months on each side; both visit volume and basket size
  // must shrink.
  EXPECT_LT(receipts_after, receipts_before / 2);
  const double avg_basket_before =
      static_cast<double>(items_before) / receipts_before;
  const double avg_basket_after =
      static_cast<double>(items_after) / receipts_after;
  EXPECT_LT(avg_basket_after, avg_basket_before);
}

TEST(RetailSimulator, LoyalVolumeStableAcrossHalves) {
  const Market market = MakeMarket();
  const auto profiles = MakeProfiles(market, 30, 0);
  Rng rng(10);
  const retail::Dataset dataset =
      RetailSimulator::Simulate(market, profiles, 28, &rng).ValueOrDie();
  size_t first_half = 0;
  size_t second_half = 0;
  for (const retail::Receipt& receipt : dataset.store().AllReceipts()) {
    (retail::DayToMonth(receipt.day) < 14 ? first_half : second_half) += 1;
  }
  EXPECT_NEAR(static_cast<double>(second_half),
              static_cast<double>(first_half),
              0.15 * static_cast<double>(first_half));
}

TEST(RetailSimulator, BrandSwitchingStaysWithinSegment) {
  const Market market = MakeMarket();
  auto profiles = MakeProfiles(market, 4, 0);
  for (CustomerProfile& profile : profiles) {
    profile.brand_switch_probability = 0.9;
    profile.exploration_items_per_trip = 0.0;
  }
  Rng rng(11);
  const retail::Dataset dataset =
      RetailSimulator::Simulate(market, profiles, 12, &rng).ValueOrDie();
  // Without exploration, every purchased item's segment must belong to the
  // customer's repertoire segments.
  for (const CustomerProfile& profile : profiles) {
    std::set<retail::SegmentId> repertoire_segments;
    for (const RepertoireEntry& entry : profile.repertoire) {
      repertoire_segments.insert(market.taxonomy.SegmentOf(entry.item));
    }
    for (const retail::Receipt& receipt :
         dataset.store().History(profile.customer)) {
      for (const retail::ItemId item : receipt.items) {
        EXPECT_TRUE(repertoire_segments.count(market.taxonomy.SegmentOf(item)))
            << "item " << item << " outside repertoire segments";
      }
    }
  }
}

TEST(RetailSimulator, LostItemsStopAppearing) {
  const Market market = MakeMarket();
  auto profiles = MakeProfiles(market, 1, 0);
  CustomerProfile& profile = profiles.front();
  profile.brand_switch_probability = 0.0;
  profile.exploration_items_per_trip = 0.0;
  ASSERT_FALSE(profile.repertoire.empty());
  profile.repertoire[0].loss_month = 6;
  const retail::ItemId lost_item = profile.repertoire[0].item;
  Rng rng(12);
  const retail::Dataset dataset =
      RetailSimulator::Simulate(market, profiles, 12, &rng).ValueOrDie();
  for (const retail::Receipt& receipt :
       dataset.store().History(profile.customer)) {
    if (retail::DayToMonth(receipt.day) >= 6) {
      for (const retail::ItemId item : receipt.items) {
        EXPECT_NE(item, lost_item);
      }
    }
  }
}

TEST(RetailSimulator, ValidationErrors) {
  const Market market = MakeMarket();
  const auto profiles = MakeProfiles(market, 2, 0);
  Rng rng(13);
  EXPECT_FALSE(RetailSimulator::Simulate(market, profiles, 0, &rng).ok());
  EXPECT_FALSE(RetailSimulator::Simulate(market, {}, 12, &rng).ok());
  // Profile referencing an item outside the market.
  auto bad_profiles = profiles;
  bad_profiles[0].repertoire[0].item = 100000;
  EXPECT_FALSE(
      RetailSimulator::Simulate(market, bad_profiles, 12, &rng).ok());
}

}  // namespace
}  // namespace datagen
}  // namespace churnlab
