#include "eval/latency.h"

#include <gtest/gtest.h>

#include "core/stability_model.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace eval {
namespace {

// Hand-built scores: 2 loyal, 2 defectors over 5 windows (span 2 months).
struct Fixture {
  retail::Dataset dataset;
  core::ScoreMatrix scores{{1, 2, 3, 4}, 5};

  Fixture() {
    dataset.SetLabel(1, {retail::Cohort::kLoyal, -1});
    dataset.SetLabel(2, {retail::Cohort::kLoyal, -1});
    dataset.SetLabel(3, {retail::Cohort::kDefecting, 4});
    dataset.SetLabel(4, {retail::Cohort::kDefecting, 4});
    // Loyal 1: always high. Loyal 2: one dip below 0.6 at window 3.
    for (int32_t w = 0; w < 5; ++w) {
      scores.Set(0, w, 0.95);
      scores.Set(1, w, w == 3 ? 0.5 : 0.9);
    }
    // Defector 3: sinks at window 2 (report month 6 -> lag 2 vs onset 4).
    // Defector 4: never sinks below 0.6.
    for (int32_t w = 0; w < 5; ++w) {
      scores.Set(2, w, w >= 2 ? 0.3 : 0.95);
      scores.Set(3, w, 0.8);
    }
  }
};

LatencyOptions DefaultOptions() {
  LatencyOptions options;
  options.beta = 0.6;
  options.warmup_windows = 1;
  options.window_span_months = 2;
  return options;
}

TEST(DetectionLatency, HandComputedLagsAndFalseAlarms) {
  const Fixture fixture;
  const LatencyResult result =
      MeasureDetectionLatency(fixture.dataset, fixture.scores,
                              DefaultOptions())
          .ValueOrDie();
  EXPECT_EQ(result.defectors, 2u);
  EXPECT_EQ(result.defectors_flagged, 1u);
  ASSERT_EQ(result.lags_months.size(), 1u);
  EXPECT_DOUBLE_EQ(result.lags_months[0], 2.0);  // month 6 - onset 4
  EXPECT_DOUBLE_EQ(result.median_lag_months, 2.0);
  EXPECT_EQ(result.loyal, 2u);
  EXPECT_EQ(result.loyal_flagged, 1u);  // loyal 2's dip
  EXPECT_DOUBLE_EQ(result.false_alarm_rate, 0.5);
}

TEST(DetectionLatency, WarmupSuppressesEarlyWindows) {
  const Fixture fixture;
  LatencyOptions options = DefaultOptions();
  options.warmup_windows = 4;  // only window 4 is eligible
  const LatencyResult result =
      MeasureDetectionLatency(fixture.dataset, fixture.scores, options)
          .ValueOrDie();
  // Loyal 2's dip (window 3) is now inside the warmup: no false alarm.
  EXPECT_EQ(result.loyal_flagged, 0u);
  // Defector 3 is flagged at window 4 instead: lag = 10 - 4 = 6.
  ASSERT_EQ(result.lags_months.size(), 1u);
  EXPECT_DOUBLE_EQ(result.lags_months[0], 6.0);
}

TEST(DetectionLatency, HigherIsPositiveOrientation) {
  retail::Dataset dataset;
  dataset.SetLabel(1, {retail::Cohort::kLoyal, -1});
  dataset.SetLabel(2, {retail::Cohort::kDefecting, 0});
  core::ScoreMatrix scores({1, 2}, 2);
  scores.Set(0, 1, 0.1);
  scores.Set(1, 1, 0.9);  // high churn probability
  LatencyOptions options;
  options.beta = 0.5;
  options.orientation = ScoreOrientation::kHigherIsPositive;
  options.warmup_windows = 0;
  options.window_span_months = 2;
  const LatencyResult result =
      MeasureDetectionLatency(dataset, scores, options).ValueOrDie();
  EXPECT_EQ(result.defectors_flagged, 1u);
  EXPECT_EQ(result.loyal_flagged, 0u);
}

TEST(DetectionLatency, EndToEndOnSimulatedData) {
  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 150;
  scenario.population.num_defecting = 150;
  scenario.seed = 13;
  const retail::Dataset dataset =
      datagen::MakePaperDataset(scenario).ValueOrDie();
  core::StabilityModelOptions model_options;
  model_options.significance.alpha = 2.0;
  model_options.window_span_months = 2;
  const auto model = core::StabilityModel::Make(model_options).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const LatencyResult result =
      MeasureDetectionLatency(dataset, scores, DefaultOptions())
          .ValueOrDie();
  // Most defectors get caught, within a few months of onset, at a modest
  // false-alarm rate.
  EXPECT_GT(static_cast<double>(result.defectors_flagged) /
                static_cast<double>(result.defectors),
            0.8);
  EXPECT_GT(result.median_lag_months, 0.0);
  EXPECT_LT(result.median_lag_months, 8.0);
  EXPECT_LT(result.false_alarm_rate, 0.35);
}

TEST(DetectionLatency, ValidationErrors) {
  const Fixture fixture;
  LatencyOptions bad_span = DefaultOptions();
  bad_span.window_span_months = 0;
  EXPECT_FALSE(
      MeasureDetectionLatency(fixture.dataset, fixture.scores, bad_span)
          .ok());
  LatencyOptions bad_warmup = DefaultOptions();
  bad_warmup.warmup_windows = -1;
  EXPECT_FALSE(
      MeasureDetectionLatency(fixture.dataset, fixture.scores, bad_warmup)
          .ok());
  // No labels at all.
  retail::Dataset empty;
  EXPECT_FALSE(
      MeasureDetectionLatency(empty, fixture.scores, DefaultOptions()).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
