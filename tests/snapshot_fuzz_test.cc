// Property/fuzz tests for snapshot robustness: seeded random corruption
// (bit flips, truncation, duplication, insertion) of fleet snapshot bytes
// must either restore to a self-consistent fleet or fail with a clean
// Status — never crash, hang, over-allocate, or invoke UB. The suites run
// under ASan/UBSan and TSan via scripts/check_faults.sh.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "serve/fleet.h"
#include "serve/state_store.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

FleetOptions FuzzFleetOptions() {
  FleetOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 4;
  options.num_threads = 1;
  options.granularity = retail::Granularity::kProduct;
  options.policy.beta = 0.5;
  options.policy.warmup_windows = 1;
  options.policy.drop_threshold = 2.0;
  return options;
}

ScoringFleet SeedFleet() {
  auto fleet = ScoringFleet::Make(FuzzFleetOptions(), nullptr).ValueOrDie();
  std::vector<Receipt> batch;
  for (CustomerId customer = 1; customer <= 10; ++customer) {
    for (Day day = 0; day < 120; day += 9) {
      Receipt receipt;
      receipt.customer = customer;
      receipt.day = day;
      receipt.spend = 1.0;
      receipt.items = {customer, 100, 101};
      batch.push_back(std::move(receipt));
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const Receipt& a, const Receipt& b) { return a.day < b.day; });
  EXPECT_TRUE(fleet.IngestBatch(batch).ok());
  return fleet;
}

std::string SnapshotOf(const ScoringFleet& fleet) {
  BinaryWriter writer;
  EXPECT_TRUE(fleet.SaveSnapshot(&writer).ok());
  return writer.buffer();
}

/// One seeded mutation: flip a few bits, truncate, duplicate a slice, or
/// insert garbage — the classic torn/corrupted-file shapes.
std::string Mutate(const std::string& pristine, std::mt19937* rng) {
  std::string bytes = pristine;
  std::uniform_int_distribution<int> kind_dist(0, 3);
  switch (kind_dist(*rng)) {
    case 0: {  // flip 1..8 bits
      std::uniform_int_distribution<size_t> pos_dist(0, bytes.size() - 1);
      std::uniform_int_distribution<int> bit_dist(0, 7);
      std::uniform_int_distribution<int> count_dist(1, 8);
      const int flips = count_dist(*rng);
      for (int i = 0; i < flips; ++i) {
        bytes[pos_dist(*rng)] ^=
            static_cast<char>(1u << bit_dist(*rng));
      }
      break;
    }
    case 1: {  // truncate
      std::uniform_int_distribution<size_t> cut_dist(0, bytes.size() - 1);
      bytes.resize(cut_dist(*rng));
      break;
    }
    case 2: {  // duplicate a random slice into a random position
      std::uniform_int_distribution<size_t> pos_dist(0, bytes.size() - 1);
      const size_t from = pos_dist(*rng);
      const size_t length =
          std::min<size_t>(pos_dist(*rng) % 64 + 1, bytes.size() - from);
      const std::string slice = bytes.substr(from, length);
      bytes.insert(pos_dist(*rng), slice);
      break;
    }
    default: {  // insert random garbage
      std::uniform_int_distribution<size_t> pos_dist(0, bytes.size() - 1);
      std::uniform_int_distribution<int> byte_dist(0, 255);
      std::uniform_int_distribution<int> length_dist(1, 16);
      std::string garbage;
      const int length = length_dist(*rng);
      for (int i = 0; i < length; ++i) {
        garbage += static_cast<char>(byte_dist(*rng));
      }
      bytes.insert(pos_dist(*rng), garbage);
      break;
    }
  }
  return bytes;
}

TEST(SnapshotFuzz, PristineSnapshotRoundTripsBitIdentically) {
  const ScoringFleet fleet = SeedFleet();
  const std::string snapshot = SnapshotOf(fleet);
  BinaryReader reader(snapshot);
  auto restored = ScoringFleet::Restore(&reader, nullptr).ValueOrDie();
  EXPECT_EQ(SnapshotOf(restored), snapshot);
}

TEST(SnapshotFuzz, MutatedSnapshotsNeverCrashAndRestoreCanonically) {
  const std::string pristine = SnapshotOf(SeedFleet());
  std::mt19937 rng(0x5eed0001);
  int survived = 0;
  for (int round = 0; round < 300; ++round) {
    const std::string mutated = Mutate(pristine, &rng);
    BinaryReader reader(mutated);
    Result<ScoringFleet> restored = ScoringFleet::Restore(&reader, nullptr);
    if (!restored.ok()) continue;  // clean, typed error: the common case
    ++survived;
    // A mutation that slips past the checks (e.g. a bit flip in the
    // unprotected header) must still produce a *self-consistent* fleet:
    // its own snapshot is a canonical fixed point.
    const std::string reserialized = SnapshotOf(*restored);
    BinaryReader again(reserialized);
    Result<ScoringFleet> twice = ScoringFleet::Restore(&again, nullptr);
    ASSERT_TRUE(twice.ok()) << "round " << round;
    EXPECT_EQ(SnapshotOf(*twice), reserialized) << "round " << round;
  }
  // Sanity: the corpus actually exercised both outcomes.
  EXPECT_LT(survived, 300);
}

TEST(SnapshotFuzz, MutatedGenerationFilesNeverCrash) {
  const std::string path =
      testing::TempDir() + "/churnlab_fuzz_generations.bin";
  ScoringFleet fleet = SeedFleet();
  std::remove(path.c_str());
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  Receipt more;
  more.customer = 1;
  more.day = 200;
  more.spend = 1.0;
  more.items = {1};
  ASSERT_TRUE(fleet.IngestBatch(std::vector<Receipt>{more}).ok());
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());

  auto opened = BinaryReader::OpenFile(path);
  ASSERT_TRUE(opened.ok());
  const auto all = opened->ReadBytes(opened->remaining());
  ASSERT_TRUE(all.ok());
  const std::string pristine = *all;

  std::mt19937 rng(0x5eed0002);
  for (int round = 0; round < 150; ++round) {
    const std::string mutated = Mutate(pristine, &rng);
    BinaryWriter writer;
    writer.WriteBytes(mutated.data(), mutated.size());
    ASSERT_TRUE(writer.SaveToFile(path).ok());
    // Either outcome is fine; crashing, hanging, or tripping a sanitizer
    // is not.
    (void)ScoringFleet::RestoreFromFile(path, nullptr);
  }
  std::remove(path.c_str());
}

TEST(SnapshotFuzz, TruncatedGenerationFileFallsBackOrFailsCleanly) {
  const std::string path =
      testing::TempDir() + "/churnlab_fuzz_truncated.bin";
  ScoringFleet fleet = SeedFleet();
  std::remove(path.c_str());
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  const std::string generation1 = SnapshotOf(fleet);
  Receipt more;
  more.customer = 2;
  more.day = 200;
  more.spend = 1.0;
  more.items = {2};
  ASSERT_TRUE(fleet.IngestBatch(std::vector<Receipt>{more}).ok());
  ASSERT_TRUE(fleet.AppendSnapshotToFile(path).ok());
  const std::string generation2 = SnapshotOf(fleet);

  auto opened = BinaryReader::OpenFile(path);
  ASSERT_TRUE(opened.ok());
  const auto all = opened->ReadBytes(opened->remaining());
  ASSERT_TRUE(all.ok());
  const std::string pristine = *all;

  // Every strict prefix — a crash at any write offset — restores to one of
  // the two generations or fails cleanly. Prefixes that keep generation 1
  // intact must restore to it.
  std::mt19937 rng(0x5eed0003);
  std::uniform_int_distribution<size_t> cut_dist(0, pristine.size() - 1);
  for (int round = 0; round < 100; ++round) {
    const size_t cut = cut_dist(rng);
    BinaryWriter writer;
    writer.WriteBytes(pristine.data(), cut);
    ASSERT_TRUE(writer.SaveToFile(path).ok());
    Result<ScoringFleet> restored =
        ScoringFleet::RestoreFromFile(path, nullptr);
    if (!restored.ok()) continue;  // unusable prefix: a clean, typed error
    const std::string roundtrip = SnapshotOf(*restored);
    EXPECT_TRUE(roundtrip == generation1 || roundtrip == generation2)
        << "cut at " << cut << " restored to a state that was never saved";
  }

  // The two interesting exact cuts: end of generation 1's frame (restores
  // to generation 1) and the full file (restores to generation 2).
  {
    BinaryWriter frame;
    frame.WriteBytes("CHLFGENS", 8);
    frame.WriteVarint(generation1.size());
    frame.WriteVarint(Crc32(generation1.data(), generation1.size()));
    const size_t frame1_size = frame.buffer().size() + generation1.size();
    BinaryWriter writer;
    writer.WriteBytes(pristine.data(), frame1_size);
    ASSERT_TRUE(writer.SaveToFile(path).ok());
    auto restored = ScoringFleet::RestoreFromFile(path, nullptr).ValueOrDie();
    EXPECT_EQ(SnapshotOf(restored), generation1);
  }
  {
    BinaryWriter writer;
    writer.WriteBytes(pristine.data(), pristine.size());
    ASSERT_TRUE(writer.SaveToFile(path).ok());
    auto restored = ScoringFleet::RestoreFromFile(path, nullptr).ValueOrDie();
    EXPECT_EQ(SnapshotOf(restored), generation2);
  }
  std::remove(path.c_str());
}

// --- length-prefix hardening (regression) -----------------------------------

TEST(SnapshotFuzz, HugeFrameSizePrefixFailsWithoutAllocating) {
  // Regression: the shard-frame parser used to trust the length prefix and
  // reserve() it. A snapshot declaring a multi-exabyte frame must fail with
  // InvalidArgument before any allocation.
  const std::string pristine = SnapshotOf(SeedFleet());
  // The header ends where the first shard frame's size varint begins. Redo
  // the header parse to find it.
  BinaryReader reader(pristine);
  ASSERT_TRUE(reader.ReadBytes(8).ok());            // magic
  ASSERT_TRUE(reader.ReadVarint().ok());            // version
  ASSERT_TRUE(reader.ReadVarint().ok());            // significance kind
  ASSERT_TRUE(reader.ReadDouble().ok());            // alpha
  ASSERT_TRUE(reader.ReadDouble().ok());            // max_abs_exponent
  ASSERT_TRUE(reader.ReadDouble().ok());            // ewma_lambda
  ASSERT_TRUE(reader.ReadSignedVarint().ok());      // window span
  ASSERT_TRUE(reader.ReadSignedVarint().ok());      // origin day
  ASSERT_TRUE(reader.ReadDouble().ok());            // policy beta
  ASSERT_TRUE(reader.ReadSignedVarint().ok());      // consecutive windows
  ASSERT_TRUE(reader.ReadDouble().ok());            // drop threshold
  ASSERT_TRUE(reader.ReadSignedVarint().ok());      // warmup windows
  ASSERT_TRUE(reader.ReadVarint().ok());            // num shards
  ASSERT_TRUE(reader.ReadVarint().ok());            // granularity
  const size_t header_size = pristine.size() - reader.remaining();

  BinaryWriter hostile;
  hostile.WriteBytes(pristine.data(), header_size);
  hostile.WriteVarint(uint64_t{1} << 60);  // frame size: one exabyte
  hostile.WriteVarint(0);                  // crc
  hostile.WriteBytes("x", 1);
  BinaryReader hostile_reader(hostile.buffer());
  const auto restored = ScoringFleet::Restore(&hostile_reader, nullptr);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument());
}

TEST(SnapshotFuzz, HugeShardCustomerCountFailsWithoutAllocating) {
  // Regression: LoadShardState used to reserve() the customer count read
  // from the frame. A frame declaring 2^60 customers must be rejected as
  // InvalidArgument before any reserve.
  auto store = [] {
    StateStoreOptions options;
    options.scorer.window_span_days = 30;
    options.num_shards = 2;
    return CustomerStateStore::Make(options).ValueOrDie();
  }();
  BinaryWriter hostile;
  hostile.WriteVarint(uint64_t{1} << 60);  // customer count
  BinaryReader reader(hostile.buffer());
  const Status status = store.LoadShardState(0, &reader);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
