#include "eval/forecaster.h"

#include <gtest/gtest.h>

#include <utility>

#include "common/macros.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace eval {
namespace {


/// Make-then-Run in one step, mirroring how callers now use the API.
Result<ForecastResult> Forecast(const retail::Dataset& dataset,
                                ForecastOptions options) {
  CHURNLAB_ASSIGN_OR_RETURN(const StabilityForecaster forecaster,
                            StabilityForecaster::Make(std::move(options)));
  return forecaster.Run(dataset);
}

retail::Dataset MakeSpreadOnsetDataset() {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 300;
  config.population.num_defecting = 300;
  config.population.attrition.onset_month = 18;
  config.population.attrition.onset_jitter_months = 5;
  config.population.attrition.early_loss_months = 4;
  config.population.attrition.early_loss_quantile = 0.35;
  config.seed = 55;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

TEST(StabilityForecaster, PartitionsCohortsByOnset) {
  const retail::Dataset dataset = MakeSpreadOnsetDataset();
  ForecastOptions options;
  options.decision_month = 16;
  options.horizon_months = 6;
  const ForecastResult result =
      Forecast(dataset, options).ValueOrDie();
  EXPECT_EQ(result.num_loyal, 300u);
  EXPECT_GT(result.num_future_defectors, 0u);
  EXPECT_GT(result.num_already_defecting, 0u);
  // Every defector is either excluded (onset <= 16), a future defector
  // (onset in 17..22), or beyond the horizon (onset 23).
  EXPECT_LE(result.num_future_defectors + result.num_already_defecting, 300u);
}

TEST(StabilityForecaster, ShortLeadBucketCarriesSignal) {
  const retail::Dataset dataset = MakeSpreadOnsetDataset();
  ForecastOptions options;
  options.decision_month = 16;
  options.horizon_months = 6;
  const ForecastResult result =
      Forecast(dataset, options).ValueOrDie();
  ASSERT_EQ(result.by_lead.size(), 6u);
  // Lead-1 defectors have 4 months of smoldering losses behind them.
  ASSERT_GT(result.by_lead[0].num_defectors, 10u);
  EXPECT_GT(result.by_lead[0].auroc, 0.6);
  // Pooled AUROC is at least weakly above chance.
  EXPECT_GT(result.auroc, 0.5);
}

TEST(StabilityForecaster, LongLeadNearChance) {
  const retail::Dataset dataset = MakeSpreadOnsetDataset();
  ForecastOptions options;
  options.decision_month = 14;
  options.horizon_months = 6;
  const ForecastResult result =
      Forecast(dataset, options).ValueOrDie();
  // Defectors 6 months out have not changed behaviour at all yet.
  const auto& far = result.by_lead.back();
  if (far.num_defectors > 20) {
    EXPECT_NEAR(far.auroc, 0.5, 0.15);
  }
}

TEST(StabilityForecaster, ValidationErrors) {
  const retail::Dataset dataset = MakeSpreadOnsetDataset();
  ForecastOptions bad_decision;
  bad_decision.decision_month = 0;
  EXPECT_FALSE(Forecast(dataset, bad_decision).ok());

  ForecastOptions bad_features;
  bad_features.feature_windows = 0;
  EXPECT_FALSE(Forecast(dataset, bad_features).ok());

  ForecastOptions too_early;
  too_early.decision_month = 2;   // only one complete window
  too_early.feature_windows = 3;  // needs three
  EXPECT_FALSE(Forecast(dataset, too_early).ok());

  ForecastOptions bad_folds;
  bad_folds.decision_month = 16;
  bad_folds.cv_folds = 1;
  EXPECT_FALSE(Forecast(dataset, bad_folds).ok());
}

TEST(StabilityForecaster, TooFewExamplesFails) {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 3;
  config.population.num_defecting = 3;
  config.seed = 9;
  const retail::Dataset dataset =
      datagen::MakePaperDataset(config).ValueOrDie();
  ForecastOptions options;
  options.decision_month = 16;
  EXPECT_FALSE(Forecast(dataset, options).ok());
}

TEST(StabilityForecaster, StabilityOnlyFeaturesStillRun) {
  const retail::Dataset dataset = MakeSpreadOnsetDataset();
  ForecastOptions options;
  options.decision_month = 16;
  options.use_visit_counts = false;
  const ForecastResult result =
      Forecast(dataset, options).ValueOrDie();
  EXPECT_GE(result.auroc, 0.0);
  EXPECT_LE(result.auroc, 1.0);
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
