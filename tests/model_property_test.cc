// Model-level metamorphic properties: transformations of the input that
// must not (or must predictably) change the stability scores.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/stability.h"
#include "core/stability_model.h"
#include "core/window.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace core {
namespace {

retail::Dataset SimulateSmall(uint64_t seed) {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 25;
  config.population.num_defecting = 25;
  config.seed = seed;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

StabilityModelOptions Options() {
  StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  return options;
}

// Copy a dataset receipt-by-receipt, applying `transform` to each receipt
// before appending; labels/taxonomy/dictionary are copied unchanged.
template <typename Fn>
retail::Dataset TransformDataset(const retail::Dataset& source,
                                 Fn&& transform) {
  retail::Dataset copy;
  copy.mutable_items() = source.items();
  copy.mutable_taxonomy() = source.taxonomy();
  for (const auto& [customer, label] : source.labels()) {
    copy.SetLabel(customer, label);
  }
  for (const retail::Receipt& receipt : source.store().AllReceipts()) {
    retail::Receipt transformed = receipt;
    transform(&transformed);
    EXPECT_TRUE(copy.mutable_store().Append(std::move(transformed)).ok());
  }
  copy.Finalize();
  return copy;
}

void ExpectSameScores(const retail::Dataset& a, const retail::Dataset& b) {
  const auto model = StabilityModel::Make(Options()).ValueOrDie();
  const auto scores_a = model.ScoreDataset(a).ValueOrDie();
  const auto scores_b = model.ScoreDataset(b).ValueOrDie();
  ASSERT_EQ(scores_a.num_rows(), scores_b.num_rows());
  ASSERT_EQ(scores_a.num_windows(), scores_b.num_windows());
  for (const retail::CustomerId customer : a.store().Customers()) {
    const size_t row_a = scores_a.RowOf(customer).ValueOrDie();
    const size_t row_b = scores_b.RowOf(customer).ValueOrDie();
    for (int32_t window = 0; window < scores_a.num_windows(); ++window) {
      ASSERT_DOUBLE_EQ(scores_a.At(row_a, window),
                       scores_b.At(row_b, window))
          << "customer " << customer << " window " << window;
    }
  }
}

TEST(ModelProperties, InsertionOrderIrrelevant) {
  const retail::Dataset original = SimulateSmall(1);
  // Rebuild with receipts appended in reverse order.
  retail::Dataset reversed;
  reversed.mutable_items() = original.items();
  reversed.mutable_taxonomy() = original.taxonomy();
  for (const auto& [customer, label] : original.labels()) {
    reversed.SetLabel(customer, label);
  }
  const auto receipts = original.store().AllReceipts();
  for (size_t i = receipts.size(); i > 0; --i) {
    ASSERT_TRUE(reversed.mutable_store().Append(receipts[i - 1]).ok());
  }
  reversed.Finalize();
  ExpectSameScores(original, reversed);
}

TEST(ModelProperties, DuplicateItemsWithinReceiptIrrelevant) {
  const retail::Dataset original = SimulateSmall(2);
  const retail::Dataset duplicated =
      TransformDataset(original, [](retail::Receipt* receipt) {
        const std::vector<retail::ItemId> items = receipt->items;
        receipt->items.insert(receipt->items.end(), items.begin(),
                              items.end());
      });
  ExpectSameScores(original, duplicated);
}

TEST(ModelProperties, SameDayReceiptSplitIrrelevant) {
  // Splitting a basket into two same-day receipts leaves window unions —
  // and therefore stability — unchanged.
  const retail::Dataset original = SimulateSmall(3);
  retail::Dataset split;
  split.mutable_items() = original.items();
  split.mutable_taxonomy() = original.taxonomy();
  for (const auto& [customer, label] : original.labels()) {
    split.SetLabel(customer, label);
  }
  for (const retail::Receipt& receipt : original.store().AllReceipts()) {
    if (receipt.items.size() >= 2) {
      retail::Receipt first = receipt;
      retail::Receipt second = receipt;
      const size_t half = receipt.items.size() / 2;
      first.items.assign(receipt.items.begin(),
                         receipt.items.begin() + half);
      second.items.assign(receipt.items.begin() + half,
                          receipt.items.end());
      first.spend /= 2.0;
      second.spend /= 2.0;
      ASSERT_TRUE(split.mutable_store().Append(std::move(first)).ok());
      ASSERT_TRUE(split.mutable_store().Append(std::move(second)).ok());
    } else {
      ASSERT_TRUE(split.mutable_store().Append(receipt).ok());
    }
  }
  split.Finalize();
  ExpectSameScores(original, split);
}

TEST(ModelProperties, DayShiftWithinWindowIrrelevant) {
  // Moving every receipt to the first day of its window changes nothing:
  // the model only sees window membership.
  const retail::Dataset original = SimulateSmall(4);
  const retail::Day span = 2 * retail::kDaysPerMonth;
  const retail::Dataset snapped =
      TransformDataset(original, [span](retail::Receipt* receipt) {
        receipt->day = (receipt->day / span) * span;
      });
  ExpectSameScores(original, snapped);
}

TEST(ModelProperties, RemovingOneCustomerLeavesOthersUnchanged) {
  const retail::Dataset original = SimulateSmall(5);
  const retail::CustomerId victim = original.store().Customers().front();
  std::vector<retail::CustomerId> keep;
  for (const retail::CustomerId customer : original.store().Customers()) {
    if (customer != victim) keep.push_back(customer);
  }
  const retail::Dataset reduced =
      original.FilterCustomers(keep).ValueOrDie();

  const auto model = StabilityModel::Make(Options()).ValueOrDie();
  StabilityModelOptions fixed_windows = Options();
  fixed_windows.num_windows = model.NumWindowsFor(original);
  const auto fixed_model = StabilityModel::Make(fixed_windows).ValueOrDie();
  const auto scores_full = fixed_model.ScoreDataset(original).ValueOrDie();
  const auto scores_reduced = fixed_model.ScoreDataset(reduced).ValueOrDie();
  for (const retail::CustomerId customer : keep) {
    const size_t row_full = scores_full.RowOf(customer).ValueOrDie();
    const size_t row_reduced = scores_reduced.RowOf(customer).ValueOrDie();
    for (int32_t window = 0; window < scores_full.num_windows(); ++window) {
      ASSERT_DOUBLE_EQ(scores_full.At(row_full, window),
                       scores_reduced.At(row_reduced, window));
    }
  }
}

TEST(ModelProperties, SymbolRelabelingPreservesStabilitySeries) {
  // Permuting the symbol alphabet leaves every stability value unchanged
  // (the model is content-agnostic).
  Rng rng(6);
  std::vector<Symbol> permutation(50);
  for (size_t i = 0; i < permutation.size(); ++i) {
    permutation[i] = static_cast<Symbol>(i);
  }
  rng.Shuffle(&permutation);

  for (int trial = 0; trial < 10; ++trial) {
    WindowedHistory original;
    WindowedHistory relabeled;
    const size_t windows = 3 + rng.NextUint64(10);
    for (size_t k = 0; k < windows; ++k) {
      Window window;
      window.index = static_cast<int32_t>(k);
      const size_t size = rng.NextUint64(8);
      for (size_t i = 0; i < size; ++i) {
        window.symbols.push_back(
            static_cast<Symbol>(rng.NextUint64(permutation.size())));
      }
      std::sort(window.symbols.begin(), window.symbols.end());
      window.symbols.erase(
          std::unique(window.symbols.begin(), window.symbols.end()),
          window.symbols.end());
      Window mapped = window;
      for (Symbol& symbol : mapped.symbols) symbol = permutation[symbol];
      std::sort(mapped.symbols.begin(), mapped.symbols.end());
      original.windows.push_back(std::move(window));
      relabeled.windows.push_back(std::move(mapped));
    }
    SignificanceOptions significance;
    significance.alpha = 2.0;
    const StabilityComputer computer =
        StabilityComputer::Make(significance).ValueOrDie();
    const StabilitySeries series_a = computer.Compute(original);
    const StabilitySeries series_b = computer.Compute(relabeled);
    ASSERT_EQ(series_a.size(), series_b.size());
    for (size_t k = 0; k < series_a.size(); ++k) {
      ASSERT_DOUBLE_EQ(series_a.points[k].stability,
                       series_b.points[k].stability);
    }
  }
}

TEST(ModelProperties, SpendIsIrrelevantToStability) {
  const retail::Dataset original = SimulateSmall(7);
  const retail::Dataset repriced =
      TransformDataset(original, [](retail::Receipt* receipt) {
        receipt->spend *= 1000.0;
      });
  ExpectSameScores(original, repriced);
}

}  // namespace
}  // namespace core
}  // namespace churnlab
