#include "core/monitor.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

OnlineStabilityScorer::Options ScorerOptions() {
  OnlineStabilityScorer::Options options;
  options.significance.alpha = 2.0;
  options.window_span_days = 60;
  return options;
}

MonitorPolicy Policy(double beta = 0.6, int32_t streak = 1,
                     double drop = 2.0 /* disabled */) {
  MonitorPolicy policy;
  policy.beta = beta;
  policy.consecutive_windows = streak;
  policy.drop_threshold = drop;
  policy.warmup_windows = 1;
  return policy;
}

// Feeds the same basket for `windows` windows, then `empty_windows` silent
// windows, collecting alerts.
std::vector<StabilityAlert> RunScriptedStream(StabilityMonitor* monitor,
                                              int32_t steady_windows,
                                              int32_t empty_windows) {
  std::vector<StabilityAlert> alerts;
  for (int32_t w = 0; w < steady_windows; ++w) {
    const auto emitted =
        monitor->Observe(w * 60 + 5, {1, 2, 3}).ValueOrDie();
    alerts.insert(alerts.end(), emitted.begin(), emitted.end());
  }
  const auto tail =
      monitor
          ->AdvanceTo((steady_windows + empty_windows) * 60)
          .ValueOrDie();
  alerts.insert(alerts.end(), tail.begin(), tail.end());
  return alerts;
}

TEST(StabilityMonitor, MakeValidatesPolicy) {
  EXPECT_FALSE(StabilityMonitor::Make(ScorerOptions(), Policy(-0.1)).ok());
  EXPECT_FALSE(StabilityMonitor::Make(ScorerOptions(), Policy(1.1)).ok());
  EXPECT_FALSE(
      StabilityMonitor::Make(ScorerOptions(), Policy(0.5, 0)).ok());
  MonitorPolicy bad_warmup = Policy();
  bad_warmup.warmup_windows = -1;
  EXPECT_FALSE(StabilityMonitor::Make(ScorerOptions(), bad_warmup).ok());
  EXPECT_TRUE(StabilityMonitor::Make(ScorerOptions(), Policy()).ok());
}

TEST(StabilityMonitor, NoAlertsWhileStable) {
  auto monitor =
      StabilityMonitor::Make(ScorerOptions(), Policy()).ValueOrDie();
  const auto alerts = RunScriptedStream(&monitor, 8, 0);
  EXPECT_TRUE(alerts.empty());
  EXPECT_DOUBLE_EQ(monitor.last_stability(), 1.0);
}

TEST(StabilityMonitor, LowStabilityAlertOnSilence) {
  auto monitor =
      StabilityMonitor::Make(ScorerOptions(), Policy()).ValueOrDie();
  const auto alerts = RunScriptedStream(&monitor, 5, 2);
  // Both empty windows have stability 0 <= beta, but the streak saturates:
  // exactly one alert.
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, StabilityAlert::Kind::kLowStability);
  EXPECT_EQ(alerts[0].window_index, 5);
  EXPECT_DOUBLE_EQ(alerts[0].stability, 0.0);
}

TEST(StabilityMonitor, DebounceRequiresStreak) {
  auto monitor =
      StabilityMonitor::Make(ScorerOptions(), Policy(0.6, 2)).ValueOrDie();
  // One silent window, then recovery: no alert (streak 1 < 2).
  std::vector<StabilityAlert> alerts;
  for (int32_t w = 0; w < 4; ++w) {
    auto emitted = monitor.Observe(w * 60 + 5, {1, 2, 3}).ValueOrDie();
    alerts.insert(alerts.end(), emitted.begin(), emitted.end());
  }
  auto skip = monitor.AdvanceTo(5 * 60).ValueOrDie();  // window 4 silent
  alerts.insert(alerts.end(), skip.begin(), skip.end());
  auto back = monitor.Observe(5 * 60 + 5, {1, 2, 3}).ValueOrDie();
  alerts.insert(alerts.end(), back.begin(), back.end());
  EXPECT_TRUE(alerts.empty());

  // Two silent windows in a row: alert on the second.
  auto tail = monitor.AdvanceTo(9 * 60).ValueOrDie();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].kind, StabilityAlert::Kind::kLowStability);
}

TEST(StabilityMonitor, RearmsAfterRecovery) {
  auto monitor =
      StabilityMonitor::Make(ScorerOptions(), Policy()).ValueOrDie();
  std::vector<StabilityAlert> alerts = RunScriptedStream(&monitor, 4, 2);
  ASSERT_EQ(alerts.size(), 1u);
  // Recover for two windows, then go silent again: a second alert fires.
  auto recover = monitor.Observe(6 * 60 + 5, {1, 2, 3}).ValueOrDie();
  auto recover2 = monitor.Observe(7 * 60 + 5, {1, 2, 3}).ValueOrDie();
  auto silent = monitor.AdvanceTo(10 * 60).ValueOrDie();
  size_t low_alerts = 0;
  for (const auto& alert : silent) {
    if (alert.kind == StabilityAlert::Kind::kLowStability) ++low_alerts;
  }
  EXPECT_EQ(low_alerts, 1u);
}

TEST(StabilityMonitor, SharpDropAlert) {
  // Streak of 99 keeps the low-stability rule from ever firing, isolating
  // the drop rule.
  MonitorPolicy policy = Policy(/*beta=*/0.5, /*streak=*/99,
                                /*drop=*/0.4);
  auto monitor = StabilityMonitor::Make(ScorerOptions(), policy).ValueOrDie();
  // Steady three-product basket, then an empty window: drop 1.0 -> 0.0.
  std::vector<StabilityAlert> alerts = RunScriptedStream(&monitor, 5, 1);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, StabilityAlert::Kind::kSharpDrop);
  EXPECT_GT(alerts[0].drop, 0.9);
}

TEST(StabilityMonitor, WarmupSuppressesEarlyAlerts) {
  MonitorPolicy policy = Policy(/*beta=*/1.0);  // everything is "low"
  policy.warmup_windows = 3;
  auto monitor = StabilityMonitor::Make(ScorerOptions(), policy).ValueOrDie();
  // Windows 0..2 are warmup; the first eligible window is 3.
  std::vector<StabilityAlert> alerts;
  for (int32_t w = 0; w < 5; ++w) {
    auto emitted = monitor.Observe(w * 60 + 5, {1}).ValueOrDie();
    alerts.insert(alerts.end(), emitted.begin(), emitted.end());
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].window_index, 3);
}

TEST(StabilityAlert, ToStringMentionsKindAndNumbers) {
  StabilityAlert alert;
  alert.kind = StabilityAlert::Kind::kSharpDrop;
  alert.window_index = 7;
  alert.stability = 0.25;
  alert.drop = 0.5;
  const std::string text = alert.ToString();
  EXPECT_NE(text.find("SHARP_DROP"), std::string::npos);
  EXPECT_NE(text.find("window=7"), std::string::npos);
  EXPECT_NE(text.find("0.250"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace churnlab
