#include "datagen/population.h"

#include <set>

#include <gtest/gtest.h>

namespace churnlab {
namespace datagen {
namespace {

Market MakeMarket(uint64_t seed = 1) {
  MarketConfig config;
  config.num_departments = 4;
  config.num_segments = 30;
  config.num_products = 120;
  Rng rng(seed);
  return MarketGenerator::Generate(config, &rng).ValueOrDie();
}

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.num_loyal = 10;
  config.num_defecting = 10;
  config.min_repertoire_segments = 5;
  config.max_repertoire_segments = 15;
  return config;
}

TEST(PopulationBuilder, BuildsRequestedCohorts) {
  const Market market = MakeMarket();
  Rng rng(2);
  const auto profiles =
      PopulationBuilder::Build(SmallConfig(), market, 28, &rng).ValueOrDie();
  ASSERT_EQ(profiles.size(), 20u);
  size_t loyal = 0;
  size_t defecting = 0;
  for (const CustomerProfile& profile : profiles) {
    if (profile.cohort == retail::Cohort::kLoyal) {
      ++loyal;
      EXPECT_EQ(profile.attrition_onset_month, -1);
    } else if (profile.cohort == retail::Cohort::kDefecting) {
      ++defecting;
      EXPECT_GE(profile.attrition_onset_month, 0);
    }
  }
  EXPECT_EQ(loyal, 10u);
  EXPECT_EQ(defecting, 10u);
}

TEST(PopulationBuilder, CustomerIdsAreDense) {
  const Market market = MakeMarket();
  Rng rng(3);
  const auto profiles =
      PopulationBuilder::Build(SmallConfig(), market, 28, &rng).ValueOrDie();
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].customer, static_cast<retail::CustomerId>(i));
  }
}

TEST(PopulationBuilder, RepertoireSizesWithinBounds) {
  const Market market = MakeMarket();
  Rng rng(4);
  const auto profiles =
      PopulationBuilder::Build(SmallConfig(), market, 28, &rng).ValueOrDie();
  for (const CustomerProfile& profile : profiles) {
    EXPECT_GE(profile.repertoire.size(), 5u);
    EXPECT_LE(profile.repertoire.size(), 15u);
  }
}

TEST(PopulationBuilder, RepertoireSegmentsAreDistinct) {
  const Market market = MakeMarket();
  Rng rng(5);
  const auto profile =
      PopulationBuilder::BuildOne(SmallConfig(), market, 0, 28, &rng)
          .ValueOrDie();
  std::set<retail::SegmentId> segments;
  for (const RepertoireEntry& entry : profile.repertoire) {
    segments.insert(market.taxonomy.SegmentOf(entry.item));
  }
  EXPECT_EQ(segments.size(), profile.repertoire.size());
}

TEST(PopulationBuilder, TripProbabilitiesWithinConfiguredRange) {
  const Market market = MakeMarket();
  PopulationConfig config = SmallConfig();
  config.trip_probability_min = 0.4;
  config.trip_probability_max = 0.6;
  Rng rng(6);
  const auto profiles =
      PopulationBuilder::Build(config, market, 28, &rng).ValueOrDie();
  for (const CustomerProfile& profile : profiles) {
    for (const RepertoireEntry& entry : profile.repertoire) {
      EXPECT_GE(entry.trip_probability, 0.4);
      EXPECT_LE(entry.trip_probability, 0.6);
    }
  }
}

TEST(PopulationBuilder, VisitRatesPositiveAndHeterogeneous) {
  const Market market = MakeMarket();
  PopulationConfig config = SmallConfig();
  config.num_loyal = 100;
  config.num_defecting = 0;
  Rng rng(7);
  const auto profiles =
      PopulationBuilder::Build(config, market, 28, &rng).ValueOrDie();
  std::set<double> distinct_rates;
  for (const CustomerProfile& profile : profiles) {
    EXPECT_GE(profile.visits_per_month, 0.5);
    distinct_rates.insert(profile.visits_per_month);
  }
  EXPECT_GT(distinct_rates.size(), 50u);
}

TEST(PopulationBuilder, NaturalTurnoverProducesLossesForLoyalCustomers) {
  const Market market = MakeMarket();
  PopulationConfig config = SmallConfig();
  config.num_loyal = 100;
  config.num_defecting = 0;
  config.natural_loss_hazard_per_month = 0.1;  // strong, for the test
  Rng rng(8);
  const auto profiles =
      PopulationBuilder::Build(config, market, 28, &rng).ValueOrDie();
  size_t losses = 0;
  size_t late_adoptions = 0;
  for (const CustomerProfile& profile : profiles) {
    for (const RepertoireEntry& entry : profile.repertoire) {
      if (entry.loss_month >= 0) {
        ++losses;
        EXPECT_GT(entry.loss_month, entry.adoption_month);
      }
      if (entry.adoption_month > 0) ++late_adoptions;
    }
  }
  EXPECT_GT(losses, 0u);
  EXPECT_GT(late_adoptions, 0u);
}

TEST(PopulationBuilder, ZeroTurnoverKeepsEntriesPermanent) {
  const Market market = MakeMarket();
  PopulationConfig config = SmallConfig();
  config.num_defecting = 0;
  config.natural_loss_hazard_per_month = 0.0;
  config.late_adoption_fraction = 0.0;
  Rng rng(9);
  const auto profiles =
      PopulationBuilder::Build(config, market, 28, &rng).ValueOrDie();
  for (const CustomerProfile& profile : profiles) {
    for (const RepertoireEntry& entry : profile.repertoire) {
      EXPECT_EQ(entry.loss_month, -1);
      EXPECT_EQ(entry.adoption_month, 0);
    }
  }
}

TEST(PopulationBuilder, SeasonalityOffByDefault) {
  const Market market = MakeMarket();
  Rng rng(21);
  const auto profiles =
      PopulationBuilder::Build(SmallConfig(), market, 28, &rng).ValueOrDie();
  for (const CustomerProfile& profile : profiles) {
    EXPECT_DOUBLE_EQ(profile.seasonal_amplitude, 0.0);
  }
}

TEST(PopulationBuilder, SeasonalitySampledWithinBound) {
  const Market market = MakeMarket();
  PopulationConfig config = SmallConfig();
  config.num_loyal = 100;
  config.num_defecting = 0;
  config.seasonal_amplitude_max = 0.6;
  Rng rng(22);
  const auto profiles =
      PopulationBuilder::Build(config, market, 28, &rng).ValueOrDie();
  bool any_nonzero = false;
  for (const CustomerProfile& profile : profiles) {
    EXPECT_GE(profile.seasonal_amplitude, 0.0);
    EXPECT_LE(profile.seasonal_amplitude, 0.6);
    EXPECT_GE(profile.seasonal_phase_months, 0.0);
    EXPECT_LE(profile.seasonal_phase_months, 12.0);
    any_nonzero |= profile.seasonal_amplitude > 0.1;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(PopulationBuilder, DeterministicGivenRng) {
  const Market market = MakeMarket();
  Rng rng_a(10);
  Rng rng_b(10);
  const auto a =
      PopulationBuilder::Build(SmallConfig(), market, 28, &rng_a).ValueOrDie();
  const auto b =
      PopulationBuilder::Build(SmallConfig(), market, 28, &rng_b).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].visits_per_month, b[i].visits_per_month);
    ASSERT_EQ(a[i].repertoire.size(), b[i].repertoire.size());
    for (size_t j = 0; j < a[i].repertoire.size(); ++j) {
      EXPECT_EQ(a[i].repertoire[j].item, b[i].repertoire[j].item);
      EXPECT_EQ(a[i].repertoire[j].loss_month, b[i].repertoire[j].loss_month);
    }
  }
}

TEST(PopulationBuilder, ValidationErrors) {
  const Market market = MakeMarket();
  Rng rng(11);
  PopulationConfig empty = SmallConfig();
  empty.num_loyal = 0;
  empty.num_defecting = 0;
  EXPECT_FALSE(PopulationBuilder::Build(empty, market, 28, &rng).ok());

  PopulationConfig oversized = SmallConfig();
  oversized.max_repertoire_segments = 1000;  // > market segments
  EXPECT_FALSE(PopulationBuilder::Build(oversized, market, 28, &rng).ok());

  PopulationConfig bad_probability = SmallConfig();
  bad_probability.trip_probability_min = 0.9;
  bad_probability.trip_probability_max = 0.1;
  EXPECT_FALSE(
      PopulationBuilder::Build(bad_probability, market, 28, &rng).ok());

  PopulationConfig bad_visits = SmallConfig();
  bad_visits.mean_visits_per_month = 0.0;
  EXPECT_FALSE(PopulationBuilder::Build(bad_visits, market, 28, &rng).ok());
}

}  // namespace
}  // namespace datagen
}  // namespace churnlab
