// Unit tests for the per-thread flight recorder: site interning, the
// disarmed fast path, ring overwrite semantics (last-N retention), thread
// labels, JSONL dumps, and the failpoint-triggered auto-dump bridge.

#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "obs/fault_obs.h"
#include "obs/json.h"

namespace churnlab {
namespace obs {
namespace {

// The recorder is process-wide; every test starts from cleared rings and
// leaves the recorder disarmed with auto-dump unset.
class FlightRecorderTest : public testing::Test {
 protected:
  void SetUp() override { FlightRecorder::ResetForTest(); }
  void TearDown() override {
    FlightRecorder::Disarm();
    FlightRecorder::SetAutoDumpPath("");
    FlightRecorder::ResetForTest();
  }
};

std::string TempPath(const char* name) {
  return testing::TempDir() + name;
}

std::vector<FlightEvent> EventsForSite(uint32_t site) {
  std::vector<FlightEvent> events;
  for (const FlightEvent& event : FlightRecorder::Collect()) {
    if (event.site == site) events.push_back(event);
  }
  return events;
}

TEST_F(FlightRecorderTest, RegisterSiteInternsNames) {
  const uint32_t a = FlightRecorder::RegisterSite("frtest.site_a");
  const uint32_t b = FlightRecorder::RegisterSite("frtest.site_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(FlightRecorder::RegisterSite("frtest.site_a"), a);
  EXPECT_EQ(FlightRecorder::SiteName(a), "frtest.site_a");
  EXPECT_EQ(FlightRecorder::SiteName(0xfffffff0u), "?");
}

TEST_F(FlightRecorderTest, RecordWhileDisarmedIsDropped) {
  ASSERT_FALSE(FlightRecorder::IsArmed());
  const uint32_t site = FlightRecorder::RegisterSite("frtest.disarmed");
  const uint64_t before = FlightRecorder::TotalRecorded();
  FlightRecorder::Record(site, 1);
  EXPECT_EQ(FlightRecorder::TotalRecorded(), before);
  EXPECT_TRUE(EventsForSite(site).empty());
}

TEST_F(FlightRecorderTest, RecordedEventsComeBackInTimestampOrder) {
  FlightRecorder::Arm();
  const uint32_t site = FlightRecorder::RegisterSite("frtest.ordered");
  for (uint64_t key = 0; key < 10; ++key) {
    FlightRecorder::Record(site, key, /*duration_ns=*/key * 100);
  }
  const std::vector<FlightEvent> events = EventsForSite(site);
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].key, i);
    EXPECT_EQ(events[i].duration_ns, i * 100);
    if (i > 0) {
      EXPECT_GE(events[i].timestamp_ns, events[i - 1].timestamp_ns);
    }
  }
}

TEST_F(FlightRecorderTest, RingKeepsTheLastEventsPerThread) {
  FlightRecorder::Arm(FlightRecorder::Options{/*events_per_thread=*/64});
  const uint32_t site = FlightRecorder::RegisterSite("frtest.wrap");
  // A fresh thread gets a fresh ring with the armed capacity.
  std::thread writer([site] {
    for (uint64_t key = 0; key < 1000; ++key) {
      FlightRecorder::Record(site, key);
    }
  });
  writer.join();

  const std::vector<FlightEvent> events = EventsForSite(site);
  ASSERT_EQ(events.size(), 64u);
  std::vector<uint64_t> keys;
  for (const FlightEvent& event : events) keys.push_back(event.key);
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys.front(), 1000u - 64u);  // Oldest surviving event.
  EXPECT_EQ(keys.back(), 999u);          // Newest.
  EXPECT_GE(FlightRecorder::TotalRecorded(), 1000u);
}

TEST_F(FlightRecorderTest, FlightSpanRecordsOnlyWhenArmed) {
  const uint32_t site = FlightRecorder::RegisterSite("frtest.span");
  { FlightSpan disarmed(site, 1); }
  EXPECT_TRUE(EventsForSite(site).empty());

  FlightRecorder::Arm();
  { FlightSpan span(site, 2); }
  const std::vector<FlightEvent> events = EventsForSite(site);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, 2u);
}

TEST_F(FlightRecorderTest, ThreadLabelsSurviveThreadExit) {
  FlightRecorder::Arm();
  const uint32_t site = FlightRecorder::RegisterSite("frtest.labeled");
  std::thread worker([site] {
    FlightRecorder::LabelThread("unit-worker");
    FlightRecorder::Record(site, 5);
  });
  worker.join();
  const std::vector<FlightEvent> events = EventsForSite(site);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(FlightRecorder::ThreadLabel(events[0].thread), "unit-worker");
}

TEST_F(FlightRecorderTest, DumpJsonlHasHeaderAndDecodedEvents) {
  FlightRecorder::Arm();
  const uint32_t site = FlightRecorder::RegisterSite("frtest.dump");
  FlightRecorder::LabelThread("main");
  FlightRecorder::Record(site, 42, 1000);
  const std::string path = TempPath("flight_dump.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(FlightRecorder::DumpJsonl(path, "unit_test").ok());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  auto header = ParseJson(line);
  ASSERT_TRUE(header.ok()) << line;
  EXPECT_EQ(header->Find("churnlab_flight_version")->number, 1.0);
  EXPECT_EQ(header->Find("reason")->string, "unit_test");
  ASSERT_NE(header->Find("events"), nullptr);

  bool found = false;
  while (std::getline(file, line)) {
    auto event = ParseJson(line);
    ASSERT_TRUE(event.ok()) << line;
    const JsonValue* event_site = event->Find("site");
    if (event_site != nullptr && event_site->string == "frtest.dump") {
      found = true;
      EXPECT_EQ(event->Find("key")->number, 42.0);
      EXPECT_EQ(event->Find("dur_ns")->number, 1000.0);
      EXPECT_EQ(event->Find("thread")->string, "main");
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, TriggerDumpWithoutPathIsANoOp) {
  FlightRecorder::SetAutoDumpPath("");
  EXPECT_TRUE(FlightRecorder::TriggerDump("nothing").ok());
}

TEST_F(FlightRecorderTest, FailpointFireAutoDumpsTheFiringSite) {
  InstallFaultTelemetry();
  FlightRecorder::Arm();
  const std::string path = TempPath("flight_failpoint.jsonl");
  std::remove(path.c_str());
  FlightRecorder::SetAutoDumpPath(path);

  Failpoint* failpoint =
      FailpointRegistry::Global().Get("frtest.autodump");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  failpoint->Arm(config);
  EXPECT_FALSE(failpoint->Evaluate().ok());
  failpoint->Disarm();

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "failpoint fire did not dump to " << path;
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"reason\":\"failpoint:failpoint.frtest.autodump\""),
            std::string::npos)
      << text;
  // The dump contains the firing site's event.
  EXPECT_NE(text.find("\"site\":\"failpoint.frtest.autodump\""),
            std::string::npos)
      << text;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
