#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace eval {
namespace {

Figure1Options SmallOptions() {
  Figure1Options options;
  options.scenario.population.num_loyal = 150;
  options.scenario.population.num_defecting = 150;
  options.scenario.seed = 33;
  return options;
}

TEST(AurocPerWindow, ReportsOnePointPerWindow) {
  const retail::Dataset dataset =
      datagen::MakePaperDataset(SmallOptions().scenario).ValueOrDie();
  const auto model =
      core::StabilityModel::Make(SmallOptions().stability).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto series =
      AurocPerWindow(dataset, scores, ScoreOrientation::kLowerIsPositive, 2)
          .ValueOrDie();
  ASSERT_EQ(series.size(), static_cast<size_t>(scores.num_windows()));
  for (size_t k = 0; k < series.size(); ++k) {
    EXPECT_EQ(series[k].window, static_cast<int32_t>(k));
    EXPECT_EQ(series[k].report_month, static_cast<int32_t>(k + 1) * 2);
    EXPECT_GE(series[k].auroc, 0.0);
    EXPECT_LE(series[k].auroc, 1.0);
  }
}

TEST(AurocPerWindow, FailsWithoutLabels) {
  retail::Dataset dataset =
      datagen::MakePaperDataset(SmallOptions().scenario).ValueOrDie();
  for (const retail::CustomerId customer : dataset.store().Customers()) {
    dataset.SetLabel(customer, {retail::Cohort::kUnlabeled, -1});
  }
  const auto model =
      core::StabilityModel::Make(SmallOptions().stability).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  EXPECT_FALSE(
      AurocPerWindow(dataset, scores, ScoreOrientation::kLowerIsPositive, 2)
          .ok());
}

TEST(ExperimentRunner, Figure1ShapeMatchesPaper) {
  const Figure1Result result =
      ExperimentRunner::Make(SmallOptions()).ValueOrDie().Run().ValueOrDie();
  ASSERT_FALSE(result.rows.empty());
  EXPECT_EQ(result.onset_month, 18);

  double pre_onset_stability = -1.0;
  double post_onset_stability = -1.0;
  double post_onset_rfm = -1.0;
  for (const Figure1Row& row : result.rows) {
    EXPECT_GE(row.report_month, 12);
    EXPECT_LE(row.report_month, 24);
    if (row.report_month == 14) pre_onset_stability = row.stability_auroc;
    if (row.report_month == 22) {
      post_onset_stability = row.stability_auroc;
      post_onset_rfm = row.rfm_auroc;
    }
  }
  // The paper's qualitative claims.
  EXPECT_NEAR(pre_onset_stability, 0.5, 0.12);  // chance before onset
  EXPECT_GT(post_onset_stability, 0.75);        // detection after onset
  EXPECT_GT(post_onset_rfm, 0.7);               // RFM comparable
  EXPECT_NEAR(post_onset_stability, post_onset_rfm, 0.15);
}

TEST(ExperimentRunner, Figure1RowsAreWithinReportRange) {
  Figure1Options options = SmallOptions();
  options.first_report_month = 16;
  options.last_report_month = 20;
  const Figure1Result result =
      ExperimentRunner::Make(options).ValueOrDie().Run().ValueOrDie();
  ASSERT_EQ(result.rows.size(), 3u);  // months 16, 18, 20
}

TEST(ExperimentRunner, MismatchedWindowSpansRejected) {
  Figure1Options options = SmallOptions();
  options.stability.window_span_months = 2;
  options.rfm.features.window_span_months = 3;
  const retail::Dataset dataset =
      datagen::MakePaperDataset(options.scenario).ValueOrDie();
  // The invariant is enforced at Make time now; there is no unchecked
  // one-shot path left to smuggle mismatched spans through.
  (void)dataset;
  EXPECT_TRUE(ExperimentRunner::Make(options).status().IsInvalidArgument());
}

TEST(ExperimentRunner, BootstrapIntervalsBracketEstimates) {
  Figure1Options options = SmallOptions();
  options.bootstrap_resamples = 100;
  const Figure1Result result =
      ExperimentRunner::Make(options).ValueOrDie().Run().ValueOrDie();
  ASSERT_FALSE(result.rows.empty());
  for (const Figure1Row& row : result.rows) {
    EXPECT_LE(row.stability_auroc_lower, row.stability_auroc);
    EXPECT_GE(row.stability_auroc_upper, row.stability_auroc);
    EXPECT_GT(row.stability_auroc_upper - row.stability_auroc_lower, 0.0);
    EXPECT_LT(row.stability_auroc_upper - row.stability_auroc_lower, 0.3);
  }
}

TEST(ExperimentRunner, StatsCarriedThrough) {
  const Figure1Result result =
      ExperimentRunner::Make(SmallOptions()).ValueOrDie().Run().ValueOrDie();
  EXPECT_EQ(result.stats.num_customers, 300u);
  EXPECT_EQ(result.stats.num_loyal, 150u);
  EXPECT_EQ(result.stats.num_defecting, 150u);
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
