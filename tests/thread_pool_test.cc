#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsAndOtherTasksStillRun) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  try {
    pool.WaitIdle();
    FAIL() << "WaitIdle did not rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string(error.what()), "boom");
  }
  // A throwing task must not leave in_flight_ dangling: every queued task
  // still runs and the pool reaches idle.
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The exception slot is cleared on rethrow; subsequent batches run clean.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, DroppedExceptionsAreCountedNotSilent) {
  // Only the first exception can be rethrown from WaitIdle; the rest used
  // to vanish. They are now counted (and reported through the process-wide
  // hook / obs counter) so fault tests can assert none went missing.
  ThreadPool pool(2);
  EXPECT_EQ(pool.dropped_exceptions(), 0u);
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] { throw std::runtime_error("one of five"); });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  EXPECT_EQ(pool.dropped_exceptions(), 4u);

  // The count is a pool lifetime total across WaitIdle cycles.
  for (int i = 0; i < 3; ++i) {
    pool.Submit([] { throw std::runtime_error("one of three"); });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  EXPECT_EQ(pool.dropped_exceptions(), 6u);

  // Hook: called once per dropped exception, on the catching thread.
  static std::atomic<int> hook_calls{0};
  hook_calls = 0;
  ThreadPool::SetDroppedExceptionHook([] { ++hook_calls; });
  for (int i = 0; i < 4; ++i) {
    pool.Submit([] { throw std::runtime_error("hooked"); });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  ThreadPool::SetDroppedExceptionHook(nullptr);
  EXPECT_EQ(hook_calls.load(), 3);
  EXPECT_EQ(pool.dropped_exceptions(), 9u);
}

TEST(ThreadPool, DestructorSwallowsUnretrievedException) {
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("never retrieved"); });
  }  // must not terminate
  SUCCEED();
}

TEST(ParallelFor, RethrowsBodyException) {
  EXPECT_THROW(
      ParallelFor(0, 100, 4,
                  [](size_t i) {
                    if (i == 57) throw std::runtime_error("body failed");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, InlineExecutionRethrows) {
  // num_threads == 1 runs inline; the exception must propagate unchanged.
  EXPECT_THROW(
      ParallelFor(0, 10, 1, [](size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  ParallelFor(0, hits.size(), 4,
              [&hits](size_t i) { hits[i] += 1; });
  for (const int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ParallelFor, MatchesSequentialResult) {
  std::vector<double> parallel_out(500, 0.0);
  std::vector<double> serial_out(500, 0.0);
  const auto body = [](size_t i) {
    return static_cast<double>(i) * 1.5 + 2.0;
  };
  ParallelFor(0, 500, 4, [&](size_t i) { parallel_out[i] = body(i); });
  ParallelFor(0, 500, 1, [&](size_t i) { serial_out[i] = body(i); });
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&calls](size_t) { ++calls; });
  ParallelFor(7, 3, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SubRange) {
  std::vector<int> hits(10, 0);
  ParallelFor(3, 7, 2, [&hits](size_t i) { hits[i] = 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 3 && i < 7 ? 1 : 0);
  }
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::atomic<int> counter{0};
  ParallelFor(0, 3, 16, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace churnlab
