#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  ParallelFor(0, hits.size(), 4,
              [&hits](size_t i) { hits[i] += 1; });
  for (const int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(ParallelFor, MatchesSequentialResult) {
  std::vector<double> parallel_out(500, 0.0);
  std::vector<double> serial_out(500, 0.0);
  const auto body = [](size_t i) {
    return static_cast<double>(i) * 1.5 + 2.0;
  };
  ParallelFor(0, 500, 4, [&](size_t i) { parallel_out[i] = body(i); });
  ParallelFor(0, 500, 1, [&](size_t i) { serial_out[i] = body(i); });
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&calls](size_t) { ++calls; });
  ParallelFor(7, 3, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SubRange) {
  std::vector<int> hits(10, 0);
  ParallelFor(3, 7, 2, [&hits](size_t i) { hits[i] = 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 3 && i < 7 ? 1 : 0);
  }
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::atomic<int> counter{0};
  ParallelFor(0, 3, 16, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace churnlab
