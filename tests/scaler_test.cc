#include "rfm/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace churnlab {
namespace rfm {
namespace {

TEST(StandardScaler, CentersAndScales) {
  StandardScaler scaler;
  std::vector<std::vector<double>> rows = {{1.0, 10.0}, {3.0, 30.0},
                                           {5.0, 50.0}};
  ASSERT_TRUE(scaler.Fit(rows).ok());
  ASSERT_TRUE(scaler.Transform(&rows).ok());
  // Column means ~0, population stddev ~1.
  for (size_t j = 0; j < 2; ++j) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto& row : rows) {
      sum += row[j];
      sum_sq += row[j] * row[j];
    }
    EXPECT_NEAR(sum / 3.0, 0.0, 1e-12);
    EXPECT_NEAR(sum_sq / 3.0, 1.0, 1e-12);
  }
}

TEST(StandardScaler, KnownValues) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({{0.0}, {10.0}}).ok());
  EXPECT_DOUBLE_EQ(scaler.means()[0], 5.0);
  EXPECT_DOUBLE_EQ(scaler.scales()[0], 5.0);
  std::vector<double> row = {10.0};
  ASSERT_TRUE(scaler.Transform(&row).ok());
  EXPECT_DOUBLE_EQ(row[0], 1.0);
}

TEST(StandardScaler, ConstantColumnMapsToZero) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({{7.0, 1.0}, {7.0, 2.0}}).ok());
  std::vector<double> row = {7.0, 1.5};
  ASSERT_TRUE(scaler.Transform(&row).ok());
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_TRUE(std::isfinite(row[1]));
}

TEST(StandardScaler, TransformUnseenRowUsesTrainStatistics) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit({{0.0}, {10.0}}).ok());
  std::vector<double> row = {20.0};
  ASSERT_TRUE(scaler.Transform(&row).ok());
  EXPECT_DOUBLE_EQ(row[0], 3.0);
}

TEST(StandardScaler, Errors) {
  StandardScaler scaler;
  EXPECT_TRUE(scaler.Fit({}).IsInvalidArgument());
  EXPECT_FALSE(scaler.fitted());
  std::vector<double> row = {1.0};
  EXPECT_TRUE(scaler.Transform(&row).IsInvalidArgument());  // not fitted
  EXPECT_TRUE(scaler.Fit({{1.0, 2.0}, {3.0}}).IsInvalidArgument());  // ragged
  ASSERT_TRUE(scaler.Fit({{1.0, 2.0}, {3.0, 4.0}}).ok());
  std::vector<double> narrow = {1.0};
  EXPECT_TRUE(scaler.Transform(&narrow).IsInvalidArgument());  // wrong width
}

}  // namespace
}  // namespace rfm
}  // namespace churnlab
