#include "eval/report.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace churnlab {
namespace eval {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"month", "AUROC"});
  table.AddRow({"12", "0.51"});
  table.AddRow({"14", "0.501"});
  const std::string rendered = table.ToString();
  // Header, separator, two rows.
  EXPECT_NE(rendered.find("month  AUROC"), std::string::npos);
  EXPECT_NE(rendered.find("-----"), std::string::npos);
  EXPECT_NE(rendered.find("12     0.51"), std::string::npos);
  EXPECT_NE(rendered.find("14     0.501"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_FALSE(table.ToString().empty());
}

TEST(TextTable, LongRowsExtendColumns) {
  TextTable table({"a"});
  table.AddRow({"1", "2", "3"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("3"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable table({"col"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("col"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TextTable, WriteCsvRoundTrip) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "2.0"});
  table.AddRow({"window, months", "2"});
  const std::string path = testing::TempDir() + "/churnlab_report.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());

  auto reader = CsvReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader->ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"name", "value"}));
  ASSERT_TRUE(reader->ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"alpha", "2.0"}));
  ASSERT_TRUE(reader->ReadRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"window, months", "2"}));
  std::remove(path.c_str());
}

TEST(TextTable, WriteCsvToBadPathFails) {
  TextTable table({"x"});
  EXPECT_TRUE(table.WriteCsv("/nonexistent/dir/report.csv").IsIOError());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
