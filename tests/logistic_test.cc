#include "rfm/logistic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/math_util.h"

namespace churnlab {
namespace rfm {
namespace {

// 1-D threshold data: x < 0 -> 0, x > 0 -> 1 (separable with margin).
void MakeSeparable(std::vector<std::vector<double>>* rows,
                   std::vector<int>* labels) {
  rows->clear();
  labels->clear();
  for (double x = -2.0; x <= 2.0; x += 0.25) {
    if (std::abs(x) < 0.25) continue;
    rows->push_back({x});
    labels->push_back(x > 0 ? 1 : 0);
  }
}

// Labels drawn from a known logistic model.
void MakeCalibrated(size_t n, const std::vector<double>& weights,
                    double intercept,
                    std::vector<std::vector<double>>* rows,
                    std::vector<int>* labels, uint64_t seed = 17) {
  Rng rng(seed);
  rows->clear();
  labels->clear();
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(weights.size());
    for (double& value : row) value = rng.Normal();
    const double p = Sigmoid(Dot(weights, row) + intercept);
    labels->push_back(rng.Bernoulli(p) ? 1 : 0);
    rows->push_back(std::move(row));
  }
}

TEST(LogisticRegression, SeparableDataClassifiedPerfectly) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeSeparable(&rows, &labels);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(rows, labels).ok());
  ASSERT_TRUE(model.fitted());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(model.PredictProbability(rows[i]) > 0.5, labels[i] == 1);
  }
  EXPECT_GT(model.weights()[0], 0.0);
}

TEST(LogisticRegression, RecoverParametersOnCalibratedData) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeCalibrated(20000, {1.5, -0.8}, 0.3, &rows, &labels);
  LogisticRegressionOptions options;
  options.l2 = 0.0;
  LogisticRegression model(options);
  ASSERT_TRUE(model.Fit(rows, labels).ok());
  EXPECT_NEAR(model.weights()[0], 1.5, 0.1);
  EXPECT_NEAR(model.weights()[1], -0.8, 0.1);
  EXPECT_NEAR(model.intercept(), 0.3, 0.1);
}

TEST(LogisticRegression, IrlsAndGradientDescentAgree) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeCalibrated(3000, {0.7}, -0.2, &rows, &labels);
  LogisticRegressionOptions irls_options;
  irls_options.solver = LogisticSolver::kIrls;
  irls_options.l2 = 1e-3;
  LogisticRegression irls(irls_options);
  ASSERT_TRUE(irls.Fit(rows, labels).ok());

  LogisticRegressionOptions gd_options = irls_options;
  gd_options.solver = LogisticSolver::kGradientDescent;
  gd_options.max_iterations = 20000;
  gd_options.learning_rate = 0.5;
  gd_options.tolerance = 1e-10;
  LogisticRegression gd(gd_options);
  ASSERT_TRUE(gd.Fit(rows, labels).ok());

  EXPECT_NEAR(irls.weights()[0], gd.weights()[0], 0.01);
  EXPECT_NEAR(irls.intercept(), gd.intercept(), 0.01);
  EXPECT_NEAR(irls.final_loss(), gd.final_loss(), 1e-4);
}

TEST(LogisticRegression, L2ShrinksWeights) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeSeparable(&rows, &labels);
  LogisticRegressionOptions weak;
  weak.l2 = 1e-4;
  LogisticRegressionOptions strong;
  strong.l2 = 10.0;
  LogisticRegression weak_model(weak);
  LogisticRegression strong_model(strong);
  ASSERT_TRUE(weak_model.Fit(rows, labels).ok());
  ASSERT_TRUE(strong_model.Fit(rows, labels).ok());
  EXPECT_LT(std::abs(strong_model.weights()[0]),
            std::abs(weak_model.weights()[0]));
}

TEST(LogisticRegression, SingleClassFitsInterceptOnly) {
  LogisticRegression model;
  ASSERT_TRUE(model.Fit({{1.0}, {2.0}, {3.0}}, {1, 1, 1}).ok());
  // Predicted probability should be close to 1 everywhere.
  EXPECT_GT(model.PredictProbability({2.0}), 0.9);
}

TEST(LogisticRegression, InterceptMatchesBaseRateWithZeroFeatures) {
  // All-zero features: the model can only learn the intercept, whose
  // sigmoid must equal the positive rate.
  std::vector<std::vector<double>> rows(100, {0.0});
  std::vector<int> labels(100, 0);
  for (size_t i = 0; i < 30; ++i) labels[i] = 1;
  LogisticRegressionOptions options;
  options.l2 = 0.0;
  LogisticRegression model(options);
  ASSERT_TRUE(model.Fit(rows, labels).ok());
  EXPECT_NEAR(Sigmoid(model.intercept()), 0.3, 1e-6);
}

TEST(LogisticRegression, ConvergesInFewIrlsIterations) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeCalibrated(2000, {0.5, 0.5}, 0.0, &rows, &labels);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(rows, labels).ok());
  EXPECT_LT(model.iterations_used(), 20u);
}

TEST(LogisticRegression, ValidationErrors) {
  LogisticRegression model;
  EXPECT_TRUE(model.Fit({}, {}).IsInvalidArgument());
  EXPECT_TRUE(model.Fit({{1.0}}, {1, 0}).IsInvalidArgument());
  EXPECT_TRUE(model.Fit({{1.0}, {1.0, 2.0}}, {0, 1}).IsInvalidArgument());
  EXPECT_TRUE(model.Fit({{1.0}, {2.0}}, {0, 2}).IsInvalidArgument());
  EXPECT_TRUE(model.Fit({{std::nan("")}, {1.0}}, {0, 1}).IsInvalidArgument());
  EXPECT_FALSE(model.fitted());
}

TEST(LogisticRegression, DecisionFunctionConsistentWithProbability) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeSeparable(&rows, &labels);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(rows, labels).ok());
  const std::vector<double> x = {0.7};
  EXPECT_NEAR(model.PredictProbability(x), Sigmoid(model.DecisionFunction(x)),
              1e-15);
}

}  // namespace
}  // namespace rfm
}  // namespace churnlab
