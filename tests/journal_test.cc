// Unit tests for the durable ingest journal: append/scan round trips,
// sequence-contiguity enforcement, segment rotation, checkpoint +
// truncation, fresh-open safety, read-only scans, and fleet recovery
// (checkpoint + replay == uninterrupted ingest, byte for byte).

#include "serve/journal.h"

#include <sys/stat.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "serve/fleet.h"

namespace churnlab {
namespace serve {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  return path;
}

std::vector<Receipt> MakeReceipts(uint64_t first, size_t count) {
  std::vector<Receipt> receipts;
  receipts.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Receipt receipt;
    receipt.customer = static_cast<CustomerId>(1 + (first + i) % 7);
    receipt.day = static_cast<Day>((first + i) / 7);
    receipt.spend = 1.25 * static_cast<double>(i + 1);
    receipt.items = {static_cast<retail::ItemId>(100 + i % 3), 200};
    receipts.push_back(std::move(receipt));
  }
  return receipts;
}

TEST(JournalTest, FreshOpenAppendScanRoundTrips) {
  const std::string dir = FreshDir("journal_roundtrip");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    EXPECT_EQ(journal.next_sequence(), 0u);
    ASSERT_TRUE(journal.Append(0, MakeReceipts(0, 3)).ok());
    ASSERT_TRUE(journal.Append(3, MakeReceipts(3, 2)).ok());
    EXPECT_EQ(journal.next_sequence(), 5u);
    ASSERT_TRUE(journal.Sync().ok());
  }
  options.recover = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(options, &recovery).ValueOrDie();
  EXPECT_EQ(recovery.watermark, 0u);
  EXPECT_EQ(recovery.snapshot.kind, SnapshotRef::Kind::kNone);
  ASSERT_EQ(recovery.frames.size(), 2u);
  EXPECT_EQ(recovery.frames[0].first_sequence, 0u);
  EXPECT_EQ(recovery.frames[0].receipts.size(), 3u);
  EXPECT_EQ(recovery.frames[1].first_sequence, 3u);
  EXPECT_EQ(recovery.next_sequence, 5u);
  EXPECT_EQ(recovery.discarded_tail_frames, 0u);
  // Receipt payloads round-trip exactly.
  const std::vector<Receipt> expected = MakeReceipts(0, 3);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(recovery.frames[0].receipts[i].customer, expected[i].customer);
    EXPECT_EQ(recovery.frames[0].receipts[i].day, expected[i].day);
    EXPECT_EQ(recovery.frames[0].receipts[i].spend, expected[i].spend);
    EXPECT_EQ(recovery.frames[0].receipts[i].items, expected[i].items);
  }
  // Appending resumes at the recovered sequence.
  ASSERT_TRUE(journal.Append(5, MakeReceipts(5, 1)).ok());
  EXPECT_EQ(journal.next_sequence(), 6u);
}

TEST(JournalTest, OpenWithoutRecoverRefusesExistingFrames) {
  const std::string dir = FreshDir("journal_refuse");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    ASSERT_TRUE(journal.Append(0, MakeReceipts(0, 2)).ok());
  }
  const Result<IngestJournal> reopened = IngestJournal::Open(options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsFailedPrecondition())
      << reopened.status().ToString();
}

TEST(JournalTest, AppendEnforcesSequenceContiguity) {
  const std::string dir = FreshDir("journal_contiguity");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  auto journal = IngestJournal::Open(options).ValueOrDie();
  ASSERT_TRUE(journal.Append(0, MakeReceipts(0, 4)).ok());
  EXPECT_TRUE(journal.Append(3, MakeReceipts(3, 1))
                  .IsInvalidArgument());  // overlap
  EXPECT_TRUE(journal.Append(5, MakeReceipts(5, 1))
                  .IsInvalidArgument());  // gap
  ASSERT_TRUE(journal.Append(4, MakeReceipts(4, 1)).ok());
}

TEST(JournalTest, SegmentsRotateAndCheckpointTruncates) {
  const std::string dir = FreshDir("journal_rotate");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.max_segment_bytes = 256;  // force frequent rotation
  uint64_t sequence = 0;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(journal.Append(sequence, MakeReceipts(sequence, 5)).ok());
      sequence += 5;
    }
    size_t segments = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      segments += entry.path().extension() == ".chlj" ? 1 : 0;
    }
    EXPECT_GT(segments, 3u);

    // Checkpoint at a mid-stream watermark: only fully-covered segments go.
    SnapshotRef ref;
    ref.kind = SnapshotRef::Kind::kBare;
    ref.size = 123;
    ref.crc = 456;
    ASSERT_TRUE(journal.Checkpoint(50, ref).ok());
  }
  options.recover = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(options, &recovery).ValueOrDie();
  EXPECT_EQ(recovery.watermark, 50u);
  EXPECT_EQ(recovery.snapshot.kind, SnapshotRef::Kind::kBare);
  EXPECT_EQ(recovery.snapshot.size, 123u);
  EXPECT_EQ(recovery.snapshot.crc, 456u);
  ASSERT_FALSE(recovery.frames.empty());
  // Frames resume exactly at the watermark and reach the end.
  EXPECT_EQ(recovery.frames.front().first_sequence, 50u);
  EXPECT_EQ(recovery.next_sequence, sequence);
}

TEST(JournalTest, CheckpointAtHeadDropsEverySegment) {
  const std::string dir = FreshDir("journal_truncate_all");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    ASSERT_TRUE(journal.Append(0, MakeReceipts(0, 8)).ok());
    SnapshotRef ref;
    ref.kind = SnapshotRef::Kind::kGeneration;
    ref.size = 7;
    ref.crc = 9;
    ASSERT_TRUE(journal.Checkpoint(journal.next_sequence(), ref).ok());
  }
  options.recover = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(options, &recovery).ValueOrDie();
  EXPECT_EQ(recovery.watermark, 8u);
  EXPECT_TRUE(recovery.frames.empty());
  EXPECT_EQ(recovery.next_sequence, 8u);
  // The sequence space continues after the truncation.
  ASSERT_TRUE(journal.Append(8, MakeReceipts(8, 1)).ok());
}

TEST(JournalTest, ReadOnlyScanDoesNotMutate) {
  const std::string dir = FreshDir("journal_readonly");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    ASSERT_TRUE(journal.Append(0, MakeReceipts(0, 4)).ok());
  }
  // Corrupt the tail by appending garbage: a read-only scan must report
  // the torn tail but leave the file bytes alone.
  const std::string segment = dir + "/seg-000000001.chlj";
  struct stat before {};
  {
    std::FILE* file = std::fopen(segment.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    std::fputs("torn", file);
    std::fclose(file);
    ASSERT_EQ(::stat(segment.c_str(), &before), 0);
  }
  JournalOptions read_only = options;
  read_only.recover = true;
  read_only.read_only = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(read_only, &recovery).ValueOrDie();
  ASSERT_EQ(recovery.frames.size(), 1u);
  EXPECT_GT(recovery.discarded_tail_bytes, 0u);
  EXPECT_TRUE(journal.Append(4, MakeReceipts(4, 1)).IsFailedPrecondition());
  struct stat after {};
  ASSERT_EQ(::stat(segment.c_str(), &after), 0);
  EXPECT_EQ(before.st_size, after.st_size);

  // A writable recovery truncates the torn tail in place.
  JournalOptions writable = options;
  writable.recover = true;
  JournalRecovery repair;
  auto repaired = IngestJournal::Open(writable, &repair).ValueOrDie();
  ASSERT_EQ(::stat(segment.c_str(), &after), 0);
  EXPECT_LT(after.st_size, before.st_size);
  ASSERT_TRUE(repaired.Append(4, MakeReceipts(4, 1)).ok());
}

TEST(JournalTest, ParseFsyncPolicyRoundTrips) {
  EXPECT_EQ(ParseFsyncPolicy("always").ValueOrDie(), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("batch").ValueOrDie(), FsyncPolicy::kBatch);
  EXPECT_EQ(ParseFsyncPolicy("none").ValueOrDie(), FsyncPolicy::kNone);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_EQ(FsyncPolicyToString(FsyncPolicy::kAlways), "always");
  EXPECT_EQ(FsyncPolicyToString(FsyncPolicy::kBatch), "batch");
  EXPECT_EQ(FsyncPolicyToString(FsyncPolicy::kNone), "none");
}

// ---------------------------------------------------------------------------
// Fleet recovery: checkpoint + journal replay == uninterrupted ingest.
// ---------------------------------------------------------------------------

FleetOptions RecoveryFleetOptions() {
  FleetOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 4;
  options.num_threads = 1;
  options.granularity = retail::Granularity::kProduct;
  options.policy.beta = 0.5;
  options.policy.warmup_windows = 1;
  return options;
}

std::string BareSnapshotOf(const ScoringFleet& fleet) {
  BinaryWriter writer;
  EXPECT_TRUE(fleet.SaveSnapshot(&writer).ok());
  return writer.buffer();
}

TEST(JournalRecoveryTest, ReplayReproducesUninterruptedStateByteForByte) {
  const std::string dir = FreshDir("journal_recovery");
  const std::string snapshot_path =
      testing::TempDir() + "/journal_recovery.gens";
  std::filesystem::remove(snapshot_path);

  // The "server": ingest 3 batches, checkpoint after the second, ingest a
  // third, then "crash" (drop the fleet without another checkpoint).
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    auto fleet =
        ScoringFleet::Make(RecoveryFleetOptions(), nullptr).ValueOrDie();
    uint64_t sequence = 0;
    for (int batch = 0; batch < 3; ++batch) {
      const std::vector<Receipt> receipts =
          MakeReceipts(sequence, 40);
      ASSERT_TRUE(journal.Append(sequence, receipts).ok());
      ASSERT_TRUE(fleet.IngestBatch(receipts).ok());
      sequence += receipts.size();
      if (batch == 1) {
        Result<SnapshotRef> ref =
            fleet.AppendSnapshotGeneration(snapshot_path);
        ASSERT_TRUE(ref.ok()) << ref.status().ToString();
        ASSERT_TRUE(journal.Checkpoint(sequence, *ref).ok());
      }
    }
  }

  // The oracle: the same receipts, uninterrupted.
  auto oracle =
      ScoringFleet::Make(RecoveryFleetOptions(), nullptr).ValueOrDie();
  ASSERT_TRUE(oracle.IngestBatch(MakeReceipts(0, 120)).ok());

  // Recovery: checkpointed generation + frames above the watermark.
  options.recover = true;
  options.read_only = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(options, &recovery).ValueOrDie();
  EXPECT_EQ(recovery.watermark, 80u);
  EXPECT_EQ(recovery.next_sequence, 120u);
  ASSERT_EQ(recovery.frames.size(), 1u);
  Result<ScoringFleet> recovered = ScoringFleet::Recover(
      recovery, snapshot_path, RecoveryFleetOptions(), nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(BareSnapshotOf(*recovered), BareSnapshotOf(oracle));
}

TEST(JournalRecoveryTest, RecoverRestoresCheckpointedGenerationNotNewest) {
  const std::string dir = FreshDir("journal_ckpt_generation");
  const std::string snapshot_path =
      testing::TempDir() + "/journal_ckpt_generation.gens";
  std::filesystem::remove(snapshot_path);

  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    auto journal = IngestJournal::Open(options).ValueOrDie();
    auto fleet =
        ScoringFleet::Make(RecoveryFleetOptions(), nullptr).ValueOrDie();
    const std::vector<Receipt> first = MakeReceipts(0, 30);
    ASSERT_TRUE(journal.Append(0, first).ok());
    ASSERT_TRUE(fleet.IngestBatch(first).ok());
    Result<SnapshotRef> ref = fleet.AppendSnapshotGeneration(snapshot_path);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ASSERT_TRUE(journal.Checkpoint(30, *ref).ok());

    // More ingest, then an ORPHAN generation: appended to the snapshot
    // file but crashed before its Checkpoint landed. Its receipts still
    // sit in the journal; restoring the orphan would double-apply them.
    const std::vector<Receipt> second = MakeReceipts(30, 25);
    ASSERT_TRUE(journal.Append(30, second).ok());
    ASSERT_TRUE(fleet.IngestBatch(second).ok());
    ASSERT_TRUE(fleet.AppendSnapshotGeneration(snapshot_path).ok());
    // crash here: no Checkpoint for the orphan
  }

  auto oracle =
      ScoringFleet::Make(RecoveryFleetOptions(), nullptr).ValueOrDie();
  ASSERT_TRUE(oracle.IngestBatch(MakeReceipts(0, 55)).ok());

  options.recover = true;
  options.read_only = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(options, &recovery).ValueOrDie();
  EXPECT_EQ(recovery.watermark, 30u);
  Result<ScoringFleet> recovered = ScoringFleet::Recover(
      recovery, snapshot_path, RecoveryFleetOptions(), nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(BareSnapshotOf(*recovered), BareSnapshotOf(oracle));
}

TEST(JournalRecoveryTest, FreshJournalRecoversToFreshFleet) {
  const std::string dir = FreshDir("journal_recover_fresh");
  JournalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.recover = true;
  JournalRecovery recovery;
  auto journal = IngestJournal::Open(options, &recovery).ValueOrDie();
  EXPECT_EQ(recovery.next_sequence, 0u);
  Result<ScoringFleet> recovered =
      ScoringFleet::Recover(recovery, "", RecoveryFleetOptions(), nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->NumCustomers(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace churnlab
