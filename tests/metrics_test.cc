#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace eval {
namespace {

constexpr auto kHigher = ScoreOrientation::kHigherIsPositive;
constexpr auto kLower = ScoreOrientation::kLowerIsPositive;

TEST(ConfusionMatrix, DerivedMetrics) {
  ConfusionMatrix confusion;
  confusion.true_positives = 8;
  confusion.false_positives = 2;
  confusion.true_negatives = 85;
  confusion.false_negatives = 5;
  EXPECT_EQ(confusion.total(), 100u);
  EXPECT_DOUBLE_EQ(confusion.Accuracy(), 0.93);
  EXPECT_DOUBLE_EQ(confusion.Precision(), 0.8);
  EXPECT_NEAR(confusion.Recall(), 8.0 / 13.0, 1e-12);
  EXPECT_NEAR(confusion.FalsePositiveRate(), 2.0 / 87.0, 1e-12);
  const double precision = 0.8;
  const double recall = 8.0 / 13.0;
  EXPECT_NEAR(confusion.F1(),
              2.0 * precision * recall / (precision + recall), 1e-12);
  EXPECT_NEAR(confusion.BalancedAccuracy(),
              (recall + 85.0 / 87.0) / 2.0, 1e-12);
  EXPECT_FALSE(confusion.ToString().empty());
}

TEST(ConfusionMatrix, DegenerateDenominators) {
  const ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.FalsePositiveRate(), 0.0);
}

TEST(ConfusionAtThreshold, HigherIsPositive) {
  // Predict positive when score >= 0.5.
  const auto confusion =
      ConfusionAtThreshold({0.9, 0.5, 0.4, 0.1}, {1, 0, 1, 0}, 0.5, kHigher)
          .ValueOrDie();
  EXPECT_EQ(confusion.true_positives, 1u);   // 0.9/label1
  EXPECT_EQ(confusion.false_positives, 1u);  // 0.5/label0
  EXPECT_EQ(confusion.false_negatives, 1u);  // 0.4/label1
  EXPECT_EQ(confusion.true_negatives, 1u);   // 0.1/label0
}

TEST(ConfusionAtThreshold, LowerIsPositiveMatchesPaperBetaRule) {
  // Paper: "If Stability > beta the customer is considered loyal,
  // otherwise defecting" -> positive (defecting) when score <= beta.
  const auto confusion =
      ConfusionAtThreshold({0.2, 0.6, 0.6, 0.95}, {1, 0, 1, 0}, 0.6, kLower)
          .ValueOrDie();
  EXPECT_EQ(confusion.true_positives, 2u);   // 0.2 and 0.6 with label 1
  EXPECT_EQ(confusion.false_positives, 1u);  // 0.6 with label 0
  EXPECT_EQ(confusion.true_negatives, 1u);   // 0.95 with label 0
  EXPECT_EQ(confusion.false_negatives, 0u);
}

TEST(ConfusionAtThreshold, ValidationErrors) {
  EXPECT_FALSE(ConfusionAtThreshold({0.5}, {1, 0}, 0.5, kHigher).ok());
  EXPECT_FALSE(ConfusionAtThreshold({0.5}, {3}, 0.5, kHigher).ok());
}

TEST(LiftAtFraction, PerfectRankingYieldsMaxLift) {
  // 2 positives among 10; top-20% by score captures both -> head rate 1.0,
  // base rate 0.2 -> lift 5.
  std::vector<double> scores = {0.99, 0.95, 0.5, 0.4, 0.3,
                                0.2,  0.15, 0.1, 0.05, 0.01};
  std::vector<int> labels = {1, 1, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(LiftAtFraction(scores, labels, 0.2, kHigher).ValueOrDie(),
                   5.0);
}

TEST(LiftAtFraction, RandomRankingNearOne) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 1000; ++i) {
    scores.push_back(static_cast<double>(i % 97));  // arbitrary vs labels
    labels.push_back(i % 2);
  }
  const double lift =
      LiftAtFraction(scores, labels, 0.1, kHigher).ValueOrDie();
  EXPECT_NEAR(lift, 1.0, 0.2);
}

TEST(LiftAtFraction, LowerIsPositiveOrientation) {
  // Defectors have the LOWEST scores.
  std::vector<double> scores = {0.05, 0.1, 0.9, 0.95, 0.99};
  std::vector<int> labels = {1, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(LiftAtFraction(scores, labels, 0.4, kLower).ValueOrDie(),
                   2.5);
}

TEST(LiftAtFraction, HeadOfAtLeastOne) {
  // fraction so small it rounds to zero elements -> clamped to one.
  std::vector<double> scores = {0.9, 0.1};
  std::vector<int> labels = {1, 0};
  EXPECT_DOUBLE_EQ(
      LiftAtFraction(scores, labels, 0.01, kHigher).ValueOrDie(), 2.0);
}

TEST(LiftAtFraction, ValidationErrors) {
  EXPECT_FALSE(LiftAtFraction({}, {}, 0.5, kHigher).ok());
  EXPECT_FALSE(LiftAtFraction({0.5}, {0}, 0.5, kHigher).ok());  // no positives
  EXPECT_FALSE(LiftAtFraction({0.5}, {1}, 0.0, kHigher).ok());
  EXPECT_FALSE(LiftAtFraction({0.5}, {1}, 1.5, kHigher).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
