#include "retail/taxonomy.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace retail {
namespace {

Taxonomy MakeSmallTaxonomy() {
  Taxonomy taxonomy;
  const DepartmentId dairy = taxonomy.AddDepartment("dairy");
  const DepartmentId drinks = taxonomy.AddDepartment("drinks");
  const SegmentId milk = taxonomy.AddSegment("milk", dairy).ValueOrDie();
  const SegmentId cheese = taxonomy.AddSegment("cheese", dairy).ValueOrDie();
  const SegmentId coffee = taxonomy.AddSegment("coffee", drinks).ValueOrDie();
  EXPECT_TRUE(taxonomy.AssignItem(0, milk).ok());
  EXPECT_TRUE(taxonomy.AssignItem(1, milk).ok());
  EXPECT_TRUE(taxonomy.AssignItem(2, cheese).ok());
  EXPECT_TRUE(taxonomy.AssignItem(5, coffee).ok());
  return taxonomy;
}

TEST(Taxonomy, CountsAreTracked) {
  const Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_EQ(taxonomy.num_departments(), 2u);
  EXPECT_EQ(taxonomy.num_segments(), 3u);
  EXPECT_EQ(taxonomy.num_assigned_items(), 4u);
}

TEST(Taxonomy, SegmentOfMapsUpward) {
  const Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_EQ(taxonomy.SegmentOf(0), 0u);
  EXPECT_EQ(taxonomy.SegmentOf(1), 0u);
  EXPECT_EQ(taxonomy.SegmentOf(2), 1u);
  EXPECT_EQ(taxonomy.SegmentOf(5), 2u);
  // Unassigned items (3, 4) and out-of-range items map to invalid.
  EXPECT_EQ(taxonomy.SegmentOf(3), kInvalidSegment);
  EXPECT_EQ(taxonomy.SegmentOf(99), kInvalidSegment);
}

TEST(Taxonomy, DepartmentOfMapsUpward) {
  const Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_EQ(taxonomy.DepartmentOf(0).ValueOrDie(), 0u);
  EXPECT_EQ(taxonomy.DepartmentOf(2).ValueOrDie(), 1u);
  EXPECT_TRUE(taxonomy.DepartmentOf(7).status().IsOutOfRange());
}

TEST(Taxonomy, HasItem) {
  const Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_TRUE(taxonomy.HasItem(0));
  EXPECT_FALSE(taxonomy.HasItem(3));
}

TEST(Taxonomy, Names) {
  const Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_EQ(taxonomy.SegmentName(0).ValueOrDie(), "milk");
  EXPECT_EQ(taxonomy.DepartmentName(1).ValueOrDie(), "drinks");
  EXPECT_TRUE(taxonomy.SegmentName(9).status().IsOutOfRange());
  EXPECT_TRUE(taxonomy.DepartmentName(9).status().IsOutOfRange());
  EXPECT_EQ(taxonomy.SegmentNameOrPlaceholder(2), "coffee");
  EXPECT_EQ(taxonomy.SegmentNameOrPlaceholder(9), "segment#9");
}

TEST(Taxonomy, AddSegmentRejectsUnknownDepartment) {
  Taxonomy taxonomy;
  EXPECT_TRUE(taxonomy.AddSegment("milk", 3).status().IsOutOfRange());
}

TEST(Taxonomy, AssignItemRejectsUnknownSegment) {
  Taxonomy taxonomy;
  EXPECT_TRUE(taxonomy.AssignItem(0, 3).IsOutOfRange());
}

TEST(Taxonomy, ReassignSameSegmentIsNoOp) {
  Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_TRUE(taxonomy.AssignItem(0, 0).ok());
  EXPECT_EQ(taxonomy.num_assigned_items(), 4u);
}

TEST(Taxonomy, ReassignDifferentSegmentFails) {
  Taxonomy taxonomy = MakeSmallTaxonomy();
  EXPECT_TRUE(taxonomy.AssignItem(0, 1).IsAlreadyExists());
  EXPECT_EQ(taxonomy.SegmentOf(0), 0u);  // unchanged
}

TEST(Taxonomy, ItemsOfSegment) {
  const Taxonomy taxonomy = MakeSmallTaxonomy();
  const auto items = taxonomy.ItemsOfSegment(0);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 0u);
  EXPECT_EQ(items[1], 1u);
  EXPECT_TRUE(taxonomy.ItemsOfSegment(9).empty());
}

TEST(Taxonomy, ValidatePassesOnConsistentTaxonomy) {
  EXPECT_TRUE(MakeSmallTaxonomy().Validate().ok());
  EXPECT_TRUE(Taxonomy().Validate().ok());
}

}  // namespace
}  // namespace retail
}  // namespace churnlab
