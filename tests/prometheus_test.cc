// Unit tests for the Prometheus text exposition: name mangling, the
// labeled-metric-name convention, the metric inventory, family headers, and
// the exposition-format rules (counter _total suffix, cumulative histogram
// buckets, label splicing).

#include "obs/prometheus.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace churnlab {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusName, ManglesDotsToUnderscores) {
  EXPECT_EQ(ManglePrometheusName("churnlab.serve.receipts_ingested"),
            "churnlab_serve_receipts_ingested");
}

TEST(PrometheusName, PreservesValidCharacters) {
  EXPECT_EQ(ManglePrometheusName("ns:sub_system_Total9"),
            "ns:sub_system_Total9");
}

TEST(PrometheusName, LeadingDigitGetsUnderscorePrefix) {
  EXPECT_EQ(ManglePrometheusName("9lives"), "_9lives");
}

TEST(PrometheusName, EmptyAndFullyInvalidNames) {
  EXPECT_EQ(ManglePrometheusName(""), "_");
  EXPECT_EQ(ManglePrometheusName("a-b c"), "a_b_c");
}

TEST(PrometheusName, LabeledMetricNameEncodesSortedLabelBlock) {
  EXPECT_EQ(LabeledMetricName("churnlab.serve.shard_receipts",
                              {{"shard", "3"}}),
            "churnlab.serve.shard_receipts{shard=\"3\"}");
  EXPECT_EQ(LabeledMetricName("base", {{"a", "1"}, {"b", "2"}}),
            "base{a=\"1\",b=\"2\"}");
  EXPECT_EQ(LabeledMetricName("base", {}), "base");
}

TEST(PrometheusName, LabeledMetricNameEscapesValues) {
  EXPECT_EQ(LabeledMetricName("m", {{"k", "a\"b\\c\nd"}}),
            "m{k=\"a\\\"b\\\\c\\nd\"}");
}

TEST(PrometheusInventory, KnownBaseHasHelpUnknownDoesNot) {
  ASSERT_NE(MetricHelp("churnlab.serve.receipts_ingested"), nullptr);
  EXPECT_EQ(MetricHelp("churnlab.not.a.metric"), nullptr);
}

TEST(PrometheusExport, CounterGetsTotalSuffixAndHeaders) {
  MetricsRegistry registry;
  registry.GetCounter("churnlab.serve.receipts_ingested")->Increment(42);
  const std::string text = ExportPrometheus(registry.Snapshot());

  const std::vector<std::string> lines = Lines(text);
  ASSERT_EQ(lines.size(), 3u) << text;
  EXPECT_EQ(lines[0].find("# HELP churnlab_serve_receipts_ingested_total "),
            0u)
      << lines[0];
  EXPECT_EQ(lines[1],
            "# TYPE churnlab_serve_receipts_ingested_total counter");
  EXPECT_EQ(lines[2], "churnlab_serve_receipts_ingested_total 42");
}

TEST(PrometheusExport, LabeledSeriesShareOneFamilyHeader) {
  MetricsRegistry registry;
  for (int shard = 0; shard < 3; ++shard) {
    registry
        .GetCounter(LabeledMetricName(
            "churnlab.serve.shard_receipts",
            {{"shard", std::to_string(shard)}}))
        ->Increment(static_cast<uint64_t>(shard) + 1);
  }
  const std::string text = ExportPrometheus(registry.Snapshot());

  size_t help_lines = 0;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("# HELP", 0) == 0) ++help_lines;
  }
  EXPECT_EQ(help_lines, 1u) << text;
  EXPECT_NE(
      text.find("churnlab_serve_shard_receipts_total{shard=\"1\"} 2\n"),
      std::string::npos)
      << text;
}

TEST(PrometheusExport, UnknownMetricGetsFallbackHelp) {
  MetricsRegistry registry;
  registry.GetGauge("custom.gauge")->Set(1.5);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP custom_gauge churnlab metric custom.gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE custom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("\ncustom_gauge 1.5\n"), std::string::npos);
}

TEST(PrometheusExport, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("lat.us", HistogramOptions{{1.0, 10.0}});
  histogram->Record(0.5);   // bucket le=1
  histogram->Record(5.0);   // bucket le=10
  histogram->Record(50.0);  // overflow
  const std::string text = ExportPrometheus(registry.Snapshot());

  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3\n"), std::string::npos);
}

TEST(PrometheusExport, LabeledHistogramSplicesLeIntoLabelBlock) {
  MetricsRegistry registry;
  registry
      .GetHistogram(LabeledMetricName("churnlab.serve.shard_ingest_us",
                                      {{"shard", "1"}}),
                    HistogramOptions{{1.0}})
      ->Record(0.5);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("churnlab_serve_shard_ingest_us_bucket"
                      "{shard=\"1\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("churnlab_serve_shard_ingest_us_count{shard=\"1\"} 1"),
            std::string::npos);
}

TEST(PrometheusExport, NonFiniteGaugesUseExpositionSpelling) {
  MetricsRegistry registry;
  registry.GetGauge("g.nan")->Set(std::numeric_limits<double>::quiet_NaN());
  registry.GetGauge("g.neg")->Set(-std::numeric_limits<double>::infinity());
  registry.GetGauge("g.pos")->Set(std::numeric_limits<double>::infinity());
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos) << text;
}

// Every produced line must be either a comment or `<name>[{labels}] <value>`
// with a spec-valid metric name — the shape node_exporter's textfile
// collector requires.
TEST(PrometheusExport, EveryLineIsCommentOrValidSample) {
  MetricsRegistry registry;
  registry.GetCounter("churnlab.serve.batches_ingested")->Increment();
  registry
      .GetCounter(
          LabeledMetricName("churnlab.serve.shard_receipts", {{"shard", "0"}}))
      ->Increment(7);
  registry.GetGauge("churnlab.serve.queue_depth")->Set(3);
  registry.GetHistogram("churnlab.serve.ingest_batch_us")->Record(12.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  for (const std::string& line : Lines(text)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    ASSERT_FALSE(name.empty()) << line;
    for (size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':' ||
                         (i > 0 && c >= '0' && c <= '9');
      EXPECT_TRUE(valid) << "invalid name char in: " << line;
    }
    // The value must parse as a double in full (NaN/+Inf/-Inf included).
    const std::string value = line.substr(space + 1);
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      EXPECT_EQ(*end, '\0') << line;
    }
  }
}

TEST(PrometheusFile, WriteIsAtomicAndReadable) {
  const std::string path = testing::TempDir() + "churnlab_prom_test.prom";
  std::remove(path.c_str());
  MetricsRegistry::Global().GetCounter("churnlab.serve.batches_ingested");
  ASSERT_TRUE(WritePrometheusFile(path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string first_line;
  std::getline(file, first_line);
  EXPECT_EQ(first_line.rfind("# HELP ", 0), 0u) << first_line;
  // No leftover temp file.
  std::ifstream temp(path + ".tmp");
  EXPECT_FALSE(temp.good());
  std::remove(path.c_str());
}

TEST(PrometheusFile, WriteToBadPathFails) {
  EXPECT_FALSE(
      WritePrometheusFile("/nonexistent-dir-7c1/metrics.prom").ok());
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
