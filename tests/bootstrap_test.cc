#include "eval/bootstrap.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace churnlab {
namespace eval {
namespace {

constexpr auto kHigher = ScoreOrientation::kHigherIsPositive;

void MakeSample(size_t n, double separation, std::vector<double>* scores,
                std::vector<int>* labels, uint64_t seed = 3) {
  Rng rng(seed);
  scores->clear();
  labels->clear();
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    scores->push_back(rng.Normal(label * separation, 1.0));
    labels->push_back(label);
  }
}

TEST(BootstrapAuroc, IntervalContainsEstimate) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeSample(300, 1.0, &scores, &labels);
  const ConfidenceInterval interval =
      BootstrapAuroc(scores, labels, kHigher, BootstrapOptions{})
          .ValueOrDie();
  EXPECT_LE(interval.lower, interval.estimate);
  EXPECT_GE(interval.upper, interval.estimate);
  EXPECT_GE(interval.lower, 0.0);
  EXPECT_LE(interval.upper, 1.0);
  EXPECT_DOUBLE_EQ(interval.confidence, 0.95);
}

TEST(BootstrapAuroc, DeterministicGivenSeed) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeSample(200, 0.8, &scores, &labels);
  const auto a =
      BootstrapAuroc(scores, labels, kHigher, BootstrapOptions{}).ValueOrDie();
  const auto b =
      BootstrapAuroc(scores, labels, kHigher, BootstrapOptions{}).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapAuroc, WidthShrinksWithSampleSize) {
  std::vector<double> small_scores, large_scores;
  std::vector<int> small_labels, large_labels;
  MakeSample(100, 0.8, &small_scores, &small_labels, 5);
  MakeSample(4000, 0.8, &large_scores, &large_labels, 5);
  BootstrapOptions options;
  options.resamples = 400;
  const auto small_interval =
      BootstrapAuroc(small_scores, small_labels, kHigher, options)
          .ValueOrDie();
  const auto large_interval =
      BootstrapAuroc(large_scores, large_labels, kHigher, options)
          .ValueOrDie();
  EXPECT_LT(large_interval.upper - large_interval.lower,
            small_interval.upper - small_interval.lower);
}

TEST(BootstrapAuroc, CoversTrueValueOnRandomScores) {
  // Scores independent of labels: true AUROC = 0.5; the 95% interval
  // should include it.
  std::vector<double> scores;
  std::vector<int> labels;
  MakeSample(500, 0.0, &scores, &labels, 7);
  const ConfidenceInterval interval =
      BootstrapAuroc(scores, labels, kHigher, BootstrapOptions{})
          .ValueOrDie();
  EXPECT_LT(interval.lower, 0.5);
  EXPECT_GT(interval.upper, 0.5);
}

TEST(BootstrapAuroc, ConfidenceLevelChangesWidth) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeSample(300, 0.8, &scores, &labels, 11);
  BootstrapOptions narrow;
  narrow.confidence = 0.5;
  BootstrapOptions wide;
  wide.confidence = 0.99;
  const auto narrow_interval =
      BootstrapAuroc(scores, labels, kHigher, narrow).ValueOrDie();
  const auto wide_interval =
      BootstrapAuroc(scores, labels, kHigher, wide).ValueOrDie();
  EXPECT_LT(narrow_interval.upper - narrow_interval.lower,
            wide_interval.upper - wide_interval.lower);
}

TEST(BootstrapAuroc, ValidationErrors) {
  std::vector<double> scores = {0.1, 0.9};
  std::vector<int> labels = {0, 1};
  BootstrapOptions zero_resamples;
  zero_resamples.resamples = 0;
  EXPECT_FALSE(BootstrapAuroc(scores, labels, kHigher, zero_resamples).ok());
  BootstrapOptions bad_confidence;
  bad_confidence.confidence = 1.0;
  EXPECT_FALSE(BootstrapAuroc(scores, labels, kHigher, bad_confidence).ok());
  // Degenerate labels propagate the AUROC error.
  EXPECT_FALSE(
      BootstrapAuroc({0.5, 0.6}, {1, 1}, kHigher, BootstrapOptions{}).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
