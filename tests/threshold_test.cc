#include "eval/threshold.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace eval {
namespace {

constexpr auto kHigher = ScoreOrientation::kHigherIsPositive;
constexpr auto kLower = ScoreOrientation::kLowerIsPositive;

// Defectors (label 1) carry LOW stability: 0.2, 0.3; loyal carry 0.8, 0.9,
// with one awkward loyal at 0.35.
const std::vector<double> kStability = {0.2, 0.3, 0.35, 0.8, 0.9};
const std::vector<int> kLabels = {1, 1, 0, 0, 0};

TEST(EnumerateOperatingPoints, OrderedConservativeToAggressive) {
  const auto points =
      EnumerateOperatingPoints(kStability, kLabels, kLower).ValueOrDie();
  ASSERT_GE(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points.front().recall, 0.0);  // predict nothing
  EXPECT_DOUBLE_EQ(points.back().recall, 1.0);   // predict everything
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].recall, points[i - 1].recall);
  }
}

TEST(EnumerateOperatingPoints, MetricsMatchManualComputation) {
  const auto points =
      EnumerateOperatingPoints(kStability, kLabels, kLower).ValueOrDie();
  // Threshold 0.3 predicts {0.2, 0.3} positive: TP=2 FP=0 -> precision 1,
  // recall 1.
  bool found = false;
  for (const OperatingPoint& point : points) {
    if (point.threshold == 0.3) {
      found = true;
      EXPECT_DOUBLE_EQ(point.precision, 1.0);
      EXPECT_DOUBLE_EQ(point.recall, 1.0);
      EXPECT_DOUBLE_EQ(point.f1, 1.0);
      EXPECT_DOUBLE_EQ(point.false_positive_rate, 0.0);
      EXPECT_DOUBLE_EQ(point.accuracy, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SelectMaxF1, FindsPerfectSeparatorWhenOneExists) {
  const auto best = SelectMaxF1(kStability, kLabels, kLower).ValueOrDie();
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_GE(best.threshold, 0.3);
  EXPECT_LT(best.threshold, 0.35);
}

TEST(SelectMaxF1, HigherOrientation) {
  // Probabilities: defectors high.
  const std::vector<double> scores = {0.9, 0.7, 0.4, 0.2};
  const std::vector<int> labels = {1, 1, 0, 0};
  const auto best = SelectMaxF1(scores, labels, kHigher).ValueOrDie();
  EXPECT_DOUBLE_EQ(best.f1, 1.0);
  EXPECT_GT(best.threshold, 0.4);
}

TEST(SelectForRecall, MostConservativeMeetingTarget) {
  const auto point =
      SelectForRecall(kStability, kLabels, kLower, 0.5).ValueOrDie();
  // Recall 0.5 is reached by predicting only {0.2} positive.
  EXPECT_GE(point.recall, 0.5);
  EXPECT_DOUBLE_EQ(point.threshold, 0.2);
  EXPECT_DOUBLE_EQ(point.precision, 1.0);
}

TEST(SelectForRecall, FullRecallAlwaysReachable) {
  const auto point =
      SelectForRecall(kStability, kLabels, kLower, 1.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(point.recall, 1.0);
  // The cheapest full-recall threshold keeps the awkward loyal excluded.
  EXPECT_DOUBLE_EQ(point.threshold, 0.3);
}

TEST(SelectForRecall, InvalidTarget) {
  EXPECT_FALSE(SelectForRecall(kStability, kLabels, kLower, 1.5).ok());
  EXPECT_FALSE(SelectForRecall(kStability, kLabels, kLower, -0.1).ok());
}

TEST(SelectForPrecision, MostAggressiveMeetingTarget) {
  const auto point =
      SelectForPrecision(kStability, kLabels, kLower, 1.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(point.precision, 1.0);
  EXPECT_DOUBLE_EQ(point.recall, 1.0);  // threshold 0.3 is reachable
}

TEST(SelectForPrecision, UnreachableTargetFails) {
  // Scores identical: any positive prediction has precision = base rate 0.4.
  const std::vector<double> flat = {0.5, 0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels = {1, 1, 0, 0, 0};
  EXPECT_FALSE(SelectForPrecision(flat, labels, kLower, 0.9).ok());
  const auto base = SelectForPrecision(flat, labels, kLower, 0.3);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(base.ValueOrDie().precision, 0.4);
}

TEST(OperatingPoints, PropagateRocErrors) {
  EXPECT_FALSE(EnumerateOperatingPoints({0.5}, {1}, kLower).ok());
  EXPECT_FALSE(SelectMaxF1({}, {}, kLower).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
