// Unit tests for the fault-injection primitives: Failpoint schedules, key
// filters, fire limits, byte corruption, the registry spec/env parsers, and
// the RetryPolicy / RetryWithBackoff helper they pair with.

#include "common/failpoint.h"

#include <climits>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/retry.h"
#include "common/status.h"

namespace churnlab {
namespace {

// Each test arms only sites under its own unique prefix, and a fixture
// disarms everything afterwards: the registry is process-wide and the suite
// shares one process.
class FailpointTest : public testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

TEST_F(FailpointTest, GetReturnsOnePointerPerSite) {
  Failpoint* a = FailpointRegistry::Global().Get("fp_test.identity");
  Failpoint* b = FailpointRegistry::Global().Get("fp_test.identity");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->site(), "fp_test.identity");
  EXPECT_EQ(a->span_name(), "failpoint.fp_test.identity");
  EXPECT_FALSE(a->armed());
}

TEST_F(FailpointTest, AlwaysScheduleFiresEveryHit) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.always");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  fp->Arm(config);
  EXPECT_TRUE(fp->armed());
  for (int i = 0; i < 3; ++i) {
    const Status status = fp->Evaluate();
    EXPECT_TRUE(status.IsInternal());
    EXPECT_NE(status.ToString().find("fp_test.always"), std::string::npos);
  }
  EXPECT_EQ(fp->hits(), 3u);
  EXPECT_EQ(fp->fires(), 3u);
  fp->Disarm();
  EXPECT_FALSE(fp->armed());
}

TEST_F(FailpointTest, EveryNFiresOnMultiplesOfN) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.every");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.schedule = FailpointConfig::Schedule::kEveryN;
  config.schedule_n = 3;
  fp->Arm(config);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!fp->Evaluate().ok());
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fp->fires(), 3u);
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.nth");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.schedule = FailpointConfig::Schedule::kNth;
  config.schedule_n = 2;
  fp->Arm(config);
  EXPECT_TRUE(fp->Evaluate().ok());
  EXPECT_FALSE(fp->Evaluate().ok());
  EXPECT_TRUE(fp->Evaluate().ok());
  EXPECT_TRUE(fp->Evaluate().ok());
  EXPECT_EQ(fp->fires(), 1u);
}

TEST_F(FailpointTest, KeyFilterOnlyCountsMatchingHits) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.keyed");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.has_key = true;
  config.key = 7;
  fp->Arm(config);
  EXPECT_TRUE(fp->Evaluate(1).ok());
  EXPECT_TRUE(fp->Evaluate(6).ok());
  EXPECT_FALSE(fp->Evaluate(7).ok());
  EXPECT_TRUE(fp->Evaluate(8).ok());
  // Non-matching keys do not even count as hits toward the schedule.
  EXPECT_EQ(fp->hits(), 1u);
  EXPECT_EQ(fp->fires(), 1u);
}

TEST_F(FailpointTest, LimitCapsTotalFires) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.limited");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.limit = 2;
  fp->Arm(config);
  int injected = 0;
  for (int i = 0; i < 10; ++i) injected += fp->Evaluate().ok() ? 0 : 1;
  EXPECT_EQ(injected, 2);
  EXPECT_EQ(fp->fires(), 2u);
}

TEST_F(FailpointTest, RearmingResetsCounters) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.rearm");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  fp->Arm(config);
  EXPECT_FALSE(fp->Evaluate().ok());
  EXPECT_EQ(fp->hits(), 1u);
  fp->Arm(config);
  EXPECT_EQ(fp->hits(), 0u);
  EXPECT_EQ(fp->fires(), 0u);
}

TEST_F(FailpointTest, ThrowActionThrowsWithSite) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.throwing");
  FailpointConfig config;
  config.action = FailpointAction::kThrow;
  fp->Arm(config);
  try {
    (void)fp->Evaluate();
    FAIL() << "expected FailpointException";
  } catch (const FailpointException& e) {
    EXPECT_EQ(e.site(), "fp_test.throwing");
  }
}

TEST_F(FailpointTest, DelayActionReturnsOkAfterSleeping) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.delayed");
  FailpointConfig config;
  config.action = FailpointAction::kDelay;
  config.delay_ms = 1.0;
  fp->Arm(config);
  EXPECT_TRUE(fp->Evaluate().ok());
  EXPECT_EQ(fp->fires(), 1u);
}

TEST_F(FailpointTest, CorruptBytesFlipsExactlyOneBitDeterministically) {
  const std::string pristine(64, '\0');
  std::string first = pristine;
  {
    Failpoint* fp = FailpointRegistry::Global().Get("fp_test.corrupt_a");
    FailpointConfig config;
    config.action = FailpointAction::kCorruptBytes;
    fp->Arm(config);
    ASSERT_TRUE(fp->CorruptBytes(&first).ok());
  }
  // Exactly one bit differs from the pristine buffer.
  int bits_flipped = 0;
  for (size_t i = 0; i < pristine.size(); ++i) {
    unsigned diff = static_cast<unsigned char>(first[i]) ^
                    static_cast<unsigned char>(pristine[i]);
    while (diff != 0) {
      bits_flipped += diff & 1u;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_flipped, 1);

  // A fresh failpoint's first fire corrupts the same position: the flip is
  // a function of the fire ordinal, not of any global state.
  std::string second = pristine;
  {
    Failpoint* fp = FailpointRegistry::Global().Get("fp_test.corrupt_b");
    FailpointConfig config;
    config.action = FailpointAction::kCorruptBytes;
    fp->Arm(config);
    ASSERT_TRUE(fp->CorruptBytes(&second).ok());
  }
  EXPECT_EQ(first, second);
}

TEST_F(FailpointTest, CorruptBytesLeavesEmptyBuffersAlone) {
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.corrupt_empty");
  FailpointConfig config;
  config.action = FailpointAction::kCorruptBytes;
  fp->Arm(config);
  std::string empty;
  EXPECT_TRUE(fp->CorruptBytes(&empty).ok());
  EXPECT_TRUE(empty.empty());
}

TEST_F(FailpointTest, ArmFromSpecArmsEveryEntry) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry
                  .ArmFromSpec("fp_test.spec_a=error@every(10);"
                               "fp_test.spec_b=delay(5)@nth(3)@key(9);"
                               "fp_test.spec_c=corrupt-bytes@limit(2)")
                  .ok());
  EXPECT_TRUE(registry.Get("fp_test.spec_a")->armed());
  EXPECT_TRUE(registry.Get("fp_test.spec_b")->armed());
  EXPECT_TRUE(registry.Get("fp_test.spec_c")->armed());

  // spec_a: error on hits 10, 20, ...
  Failpoint* a = registry.Get("fp_test.spec_a");
  for (int i = 0; i < 9; ++i) EXPECT_TRUE(a->Evaluate().ok());
  EXPECT_FALSE(a->Evaluate().ok());

  // spec_b: delay, keyed to 9, third matching hit only.
  Failpoint* b = registry.Get("fp_test.spec_b");
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b->Evaluate(1).ok());
  EXPECT_TRUE(b->Evaluate(9).ok());
  EXPECT_TRUE(b->Evaluate(9).ok());
  EXPECT_EQ(b->fires(), 0u);
  EXPECT_TRUE(b->Evaluate(9).ok());  // delay action: OK after sleeping
  EXPECT_EQ(b->fires(), 1u);
}

TEST_F(FailpointTest, ArmFromSpecIgnoresEmptyEntries) {
  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec(";;fp_test.spec_d=throw;").ok());
  EXPECT_TRUE(FailpointRegistry::Global().Get("fp_test.spec_d")->armed());
  EXPECT_TRUE(FailpointRegistry::Global().ArmFromSpec("").ok());
}

TEST_F(FailpointTest, ArmFromSpecRejectsMalformedEntries) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  for (const char* bad :
       {"no-equals", "site=", "site=unknown-action", "site=error@unknown",
        "site=delay(oops)", "site=error@every(zero)", "site=error@every(0)",
        "site=delay", "site=abort(0)", "site=abort(256)", "site=abort(oops)",
        "site=abort()"}) {
    const Status status = registry.ArmFromSpec(bad);
    EXPECT_TRUE(status.IsInvalidArgument()) << "spec: " << bad << " -> "
                                            << status.ToString();
  }
}

TEST_F(FailpointTest, AbortActionKillsTheProcessWithItsExitCode) {
  // The chaos-harness primitive: firing must end the process immediately
  // (std::_Exit — no atexit flushes, like a kill -9 landing on that line),
  // with the configured exit code observable by the supervising script.
  EXPECT_EXIT(
      {
        Failpoint* fp = FailpointRegistry::Global().Get("fp_test.abort");
        FailpointConfig config;
        config.action = FailpointAction::kAbort;
        (void)fp;
        fp->Arm(config);
        (void)fp->Evaluate();
      },
      testing::ExitedWithCode(42), "");
  EXPECT_EXIT(
      {
        ASSERT_TRUE(FailpointRegistry::Global()
                        .ArmFromSpec("fp_test.abort_spec=abort(7)@nth(2)")
                        .ok());
        Failpoint* fp = FailpointRegistry::Global().Get("fp_test.abort_spec");
        (void)fp->Evaluate();  // hit 1: schedule not yet due
        (void)fp->Evaluate();  // hit 2: aborts
        std::_Exit(99);        // unreachable when the failpoint fired
      },
      testing::ExitedWithCode(7), "");
}

TEST_F(FailpointTest, AbortSpecParsesWithoutFiringOnArm) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  // Arming alone must never abort — only an Evaluate hit may.
  ASSERT_TRUE(registry.ArmFromSpec("fp_test.abort_armed=abort").ok());
  ASSERT_TRUE(
      registry.ArmFromSpec("fp_test.abort_coded=abort(255)@key(4)").ok());
  EXPECT_TRUE(registry.Get("fp_test.abort_armed")->armed());
  EXPECT_TRUE(registry.Get("fp_test.abort_coded")->armed());
  // A keyed abort ignores non-matching keys entirely.
  EXPECT_TRUE(registry.Get("fp_test.abort_coded")->Evaluate(3).ok());
}

TEST_F(FailpointTest, ArmFromEnvReadsTheSpecVariable) {
  ASSERT_EQ(setenv("CHURNLAB_FAILPOINTS", "fp_test.env=error", 1), 0);
  EXPECT_TRUE(FailpointRegistry::Global().ArmFromEnv().ok());
  EXPECT_TRUE(FailpointRegistry::Global().Get("fp_test.env")->armed());
  ASSERT_EQ(unsetenv("CHURNLAB_FAILPOINTS"), 0);
  // Unset: a no-op, not an error.
  EXPECT_TRUE(FailpointRegistry::Global().ArmFromEnv().ok());
}

TEST_F(FailpointTest, ArmedListsArmedSitesSorted) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  ASSERT_TRUE(
      registry.ArmFromSpec("fp_test.z=error;fp_test.a=error").ok());
  const std::vector<Failpoint*> armed = registry.Armed();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_EQ(armed[0]->site(), "fp_test.a");
  EXPECT_EQ(armed[1]->site(), "fp_test.z");
  registry.DisarmAll();
  EXPECT_TRUE(registry.Armed().empty());
}

TEST_F(FailpointTest, ObserverSeesEveryFire) {
  class CountingObserver : public FailpointObserver {
   public:
    void OnTrigger(const Failpoint& failpoint,
                   FailpointAction action) override {
      ++count;
      last_site = failpoint.site();
      last_action = action;
    }
    int count = 0;
    std::string last_site;
    FailpointAction last_action = FailpointAction::kError;
  };
  CountingObserver observer;
  FailpointRegistry::SetObserver(&observer);
  Failpoint* fp = FailpointRegistry::Global().Get("fp_test.observed");
  FailpointConfig config;
  config.action = FailpointAction::kError;
  config.schedule = FailpointConfig::Schedule::kEveryN;
  config.schedule_n = 2;
  fp->Arm(config);
  for (int i = 0; i < 4; ++i) (void)fp->Evaluate();
  FailpointRegistry::SetObserver(nullptr);
  EXPECT_EQ(observer.count, 2);
  EXPECT_EQ(observer.last_site, "fp_test.observed");
  EXPECT_EQ(observer.last_action, FailpointAction::kError);
}

// --- RetryPolicy / RetryWithBackoff ----------------------------------------

TEST(RetryPolicy, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 2.0;
  policy.multiplier = 3.0;
  policy.max_backoff_ms = 10.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 6.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3), 10.0);  // capped, would be 18
}

TEST(RetryWithBackoff, ReturnsFirstSuccess) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_backoff_ms = 0.0;
  int attempts = 0;
  int retries_observed = 0;
  const Status status = RetryWithBackoff(
      policy,
      [&]() -> Status {
        return ++attempts < 3 ? Status::Internal("transient") : Status::OK();
      },
      [&](int retry, const Status& cause) {
        retries_observed = retry;
        EXPECT_TRUE(cause.IsInternal());
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(retries_observed, 2);
}

TEST(RetryWithBackoff, ReturnsLastFailureWhenExhausted) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_ms = 0.0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, [&]() -> Status {
    ++attempts;
    return Status::Internal("attempt " + std::to_string(attempts));
  });
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.ToString().find("attempt 3"), std::string::npos);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryWithBackoff, ZeroRetriesRunsOnce) {
  RetryPolicy policy;
  policy.max_retries = 0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, [&]() -> Status {
    ++attempts;
    return Status::Internal("nope");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(attempts, 1);
}

TEST(RetryPolicy, BackoffClampsAtHighAttemptCounts) {
  // Regression: multiplier^k used to be accumulated by repeated
  // multiplication into a double that overflowed to inf past ~attempt 60
  // with large multipliers, and an integer backoff variant wrapped
  // negative. High retry numbers must pin to the cap, never wrap.
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 50.0;
  for (const int retry : {63, 64, 100, 1000000, INT_MAX}) {
    EXPECT_DOUBLE_EQ(policy.BackoffMs(retry), 50.0) << "retry " << retry;
  }
}

TEST(RetryPolicy, BackoffHandlesOverflowingMultiplier) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.multiplier = 1e308;  // multiplier^2 alone is not finite
  policy.max_backoff_ms = 25.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 1.0);   // multiplier^0, no cap yet
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3), 25.0);  // inf clamped to the cap
  EXPECT_DOUBLE_EQ(policy.BackoffMs(INT_MAX), 25.0);
}

TEST(RetryWithBackoff, MaxIntRetriesDoesNotOverflowAttemptCount) {
  // Regression: `1 + max_retries` as int overflowed to INT_MIN for
  // max_retries = INT_MAX and the loop never ran. The attempt budget is
  // now widened, so the function keeps retrying and returns the first OK.
  RetryPolicy policy;
  policy.max_retries = INT_MAX;
  policy.initial_backoff_ms = 0.0;
  policy.max_backoff_ms = 0.0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, [&]() -> Status {
    return ++attempts < 3 ? Status::Internal("transient") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
}

TEST(RetryWithBackoff, CapturesExceptionsAsInternal) {
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.initial_backoff_ms = 0.0;
  int attempts = 0;
  const Status status = RetryWithBackoff(policy, [&]() -> Status {
    if (++attempts == 1) throw FailpointException("fp_test.retry");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 2);

  const Status exhausted = RetryWithBackoff(
      RetryPolicy{0, 0.0, 2.0, 0.0},
      []() -> Status { throw std::runtime_error("boom"); });
  EXPECT_TRUE(exhausted.IsInternal());
  EXPECT_NE(exhausted.ToString().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace churnlab
