#include "common/flags.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace {

struct ParsedFlags {
  std::string name;
  int64_t count = 0;
  uint64_t seed = 0;
  double rate = 0.0;
  bool verbose = false;
};

Status ParseInto(ParsedFlags* flags, std::vector<const char*> args) {
  FlagParser parser("test");
  parser.AddString("name", "default", "a name", &flags->name);
  parser.AddInt64("count", 7, "a count", &flags->count);
  parser.AddUint64("seed", 42, "a seed", &flags->seed);
  parser.AddDouble("rate", 1.5, "a rate", &flags->rate);
  parser.AddBool("verbose", false, "verbosity", &flags->verbose);
  args.insert(args.begin(), "program");
  return parser.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParser, DefaultsApplied) {
  ParsedFlags flags;
  ASSERT_TRUE(ParseInto(&flags, {}).ok());
  EXPECT_EQ(flags.name, "default");
  EXPECT_EQ(flags.count, 7);
  EXPECT_EQ(flags.seed, 42u);
  EXPECT_DOUBLE_EQ(flags.rate, 1.5);
  EXPECT_FALSE(flags.verbose);
}

TEST(FlagParser, EqualsForm) {
  ParsedFlags flags;
  ASSERT_TRUE(ParseInto(&flags, {"--name=abc", "--count=-3", "--rate=0.25",
                                 "--seed=9", "--verbose=true"})
                  .ok());
  EXPECT_EQ(flags.name, "abc");
  EXPECT_EQ(flags.count, -3);
  EXPECT_EQ(flags.seed, 9u);
  EXPECT_DOUBLE_EQ(flags.rate, 0.25);
  EXPECT_TRUE(flags.verbose);
}

TEST(FlagParser, SpaceSeparatedForm) {
  ParsedFlags flags;
  ASSERT_TRUE(
      ParseInto(&flags, {"--name", "xyz", "--count", "12"}).ok());
  EXPECT_EQ(flags.name, "xyz");
  EXPECT_EQ(flags.count, 12);
}

TEST(FlagParser, BareBoolFlag) {
  ParsedFlags flags;
  ASSERT_TRUE(ParseInto(&flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.verbose);
  ParsedFlags off;
  ASSERT_TRUE(ParseInto(&off, {"--verbose=false"}).ok());
  EXPECT_FALSE(off.verbose);
  ParsedFlags zero;
  ASSERT_TRUE(ParseInto(&zero, {"--verbose=0"}).ok());
  EXPECT_FALSE(zero.verbose);
}

TEST(FlagParser, PositionalArgumentsCollected) {
  FlagParser parser("test");
  std::string name;
  parser.AddString("name", "", "n", &name);
  const char* args[] = {"program", "first", "--name=x", "second"};
  ASSERT_TRUE(parser.Parse(4, args).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParser, Errors) {
  ParsedFlags flags;
  EXPECT_TRUE(ParseInto(&flags, {"--unknown=1"}).IsInvalidArgument());
  EXPECT_TRUE(ParseInto(&flags, {"--count=abc"}).IsInvalidArgument());
  EXPECT_TRUE(ParseInto(&flags, {"--seed=-1"}).IsInvalidArgument());
  EXPECT_TRUE(ParseInto(&flags, {"--verbose=maybe"}).IsInvalidArgument());
  EXPECT_TRUE(ParseInto(&flags, {"--name"}).IsInvalidArgument());  // no value
}

TEST(FlagParser, HelpReturnsCancelled) {
  ParsedFlags flags;
  EXPECT_TRUE(ParseInto(&flags, {"--help"}).IsCancelled());
}

TEST(FlagParser, UsageMentionsFlagsAndDefaults) {
  FlagParser parser("my tool");
  double rate = 0.0;
  parser.AddDouble("rate", 2.5, "the rate", &rate);
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--rate"), std::string::npos);
  EXPECT_NE(usage.find("2.500"), std::string::npos);
  EXPECT_NE(usage.find("the rate"), std::string::npos);
}

TEST(FlagParser, BeginOffsetSkipsSubcommand) {
  FlagParser parser("test");
  std::string name;
  parser.AddString("name", "", "n", &name);
  const char* args[] = {"program", "subcommand", "--name=v"};
  ASSERT_TRUE(parser.Parse(3, args, 2).ok());
  EXPECT_EQ(name, "v");
  EXPECT_TRUE(parser.positional().empty());
}

}  // namespace
}  // namespace churnlab
