#include "core/stability.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace churnlab {
namespace core {
namespace {

WindowedHistory FromSets(const std::vector<std::vector<Symbol>>& sets) {
  WindowedHistory history;
  for (size_t k = 0; k < sets.size(); ++k) {
    Window window;
    window.index = static_cast<int32_t>(k);
    window.begin_day = static_cast<retail::Day>(k) * 60;
    window.end_day = window.begin_day + 60;
    window.symbols = sets[k];
    std::sort(window.symbols.begin(), window.symbols.end());
    window.num_receipts = window.symbols.empty() ? 0 : 1;
    history.windows.push_back(std::move(window));
  }
  return history;
}

SignificanceOptions Alpha(double alpha) {
  SignificanceOptions options;
  options.alpha = alpha;
  return options;
}

TEST(StabilityComputer, FirstWindowHasNoHistoryAndStabilityOne) {
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries series = computer.Compute(FromSets({{1, 2}}));
  ASSERT_EQ(series.size(), 1u);
  EXPECT_FALSE(series.points[0].has_history);
  EXPECT_DOUBLE_EQ(series.points[0].stability, 1.0);
  EXPECT_DOUBLE_EQ(series.points[0].total_significance, 0.0);
}

TEST(StabilityComputer, AllProductsPresentGivesStabilityOne) {
  // Paper: "If all products are contained in window k, the stability of the
  // customer is equal to 1."
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries series =
      computer.Compute(FromSets({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}}));
  for (size_t k = 1; k < series.size(); ++k) {
    EXPECT_TRUE(series.points[k].has_history);
    EXPECT_DOUBLE_EQ(series.points[k].stability, 1.0);
  }
}

TEST(StabilityComputer, EmptyWindowAfterHistoryGivesZero) {
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries series = computer.Compute(FromSets({{1, 2}, {}}));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_TRUE(series.points[1].has_history);
  EXPECT_DOUBLE_EQ(series.points[1].stability, 0.0);
}

TEST(StabilityComputer, HandComputedTwoProductCase) {
  // Windows: {a,b}, {a} -> at k=1: S(a)=S(b)=2^(2*1-1)=2.
  // Stability_1 = S(a) / (S(a)+S(b)) = 0.5.
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries series = computer.Compute(FromSets({{1, 2}, {1}}));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.points[1].present_significance, 2.0);
  EXPECT_DOUBLE_EQ(series.points[1].total_significance, 4.0);
  EXPECT_DOUBLE_EQ(series.points[1].stability, 0.5);
}

TEST(StabilityComputer, DecreaseProportionalToMissingSignificance) {
  // Build a long-standing habit a (4 windows) and a newcomer b (1 window),
  // then drop each in turn. Dropping the significant product must hurt
  // more. Windows: {a},{a},{a},{a,b}, then test {b} vs {a}.
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries drop_a =
      computer.Compute(FromSets({{1}, {1}, {1}, {1, 2}, {2}}));
  const StabilitySeries drop_b =
      computer.Compute(FromSets({{1}, {1}, {1}, {1, 2}, {1}}));
  // At k=4: S(a) = 2^(2*4-4) = 16, S(b) = 2^(2*1-4) = 1/4.
  EXPECT_DOUBLE_EQ(drop_a.points[4].stability, 0.25 / 16.25);
  EXPECT_DOUBLE_EQ(drop_b.points[4].stability, 16.0 / 16.25);
  EXPECT_LT(drop_a.points[4].stability, drop_b.points[4].stability);
}

TEST(StabilityComputer, NewProductsDoNotInflateStability) {
  // A never-before-seen product contributes S = 0 to the numerator.
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries with_new =
      computer.Compute(FromSets({{1}, {1, 99}}));
  const StabilitySeries without_new = computer.Compute(FromSets({{1}, {1}}));
  EXPECT_DOUBLE_EQ(with_new.points[1].stability,
                   without_new.points[1].stability);
}

TEST(StabilityComputer, RecoveryAfterMissedWindow) {
  // Miss one window, then resume: stability dips then climbs back as the
  // missing window's penalty decays.
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  const StabilitySeries series =
      computer.Compute(FromSets({{1}, {1}, {}, {1}, {1}, {1}}));
  EXPECT_DOUBLE_EQ(series.points[2].stability, 0.0);
  EXPECT_DOUBLE_EQ(series.points[3].stability, 1.0);  // only product returns
  EXPECT_DOUBLE_EQ(series.points[4].stability, 1.0);
}

TEST(StabilityComputer, RobustToDuplicateSymbolsInWindow) {
  // Windows are contractually deduplicated, but a duplicated symbol must
  // not double-count significance (stability would exceed 1).
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  WindowedHistory history = FromSets({{1, 2}, {1}});
  history.windows[0].symbols = {1, 1, 2};  // malformed on purpose
  history.windows[1].symbols = {1, 1};
  const StabilitySeries series = computer.Compute(history);
  EXPECT_DOUBLE_EQ(series.points[1].stability, 0.5);
}

TEST(StabilityComputer, CallbackSeesPreAdvanceTrackerState) {
  const StabilityComputer computer = StabilityComputer::Make(Alpha(2.0)).ValueOrDie();
  std::vector<int32_t> windows_seen;
  computer.ComputeWithCallback(
      FromSets({{1}, {1}, {1}}),
      [&](int32_t k, const SignificanceTracker& tracker, const Window&) {
        windows_seen.push_back(tracker.windows_seen());
        EXPECT_EQ(tracker.windows_seen(), k);
      });
  EXPECT_EQ(windows_seen, (std::vector<int32_t>{0, 1, 2}));
}

// Property: stability is always within [0, 1] for random histories and a
// range of alphas.
class StabilityBoundsTest : public ::testing::TestWithParam<double> {};

TEST_P(StabilityBoundsTest, StabilityStaysInUnitInterval) {
  const double alpha = GetParam();
  Rng rng(static_cast<uint64_t>(alpha * 1000));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<Symbol>> sets(12);
    for (auto& set : sets) {
      const size_t size = rng.NextUint64(8);
      for (size_t i = 0; i < size; ++i) {
        set.push_back(static_cast<Symbol>(rng.NextUint64(10)));
      }
    }
    const StabilityComputer computer =
        StabilityComputer::Make(Alpha(alpha)).ValueOrDie();
    const StabilitySeries series = computer.Compute(FromSets(sets));
    for (const StabilityPoint& point : series.points) {
      EXPECT_GE(point.stability, 0.0);
      EXPECT_LE(point.stability, 1.0 + 1e-12);
      EXPECT_GE(point.total_significance, point.present_significance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, StabilityBoundsTest,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace core
}  // namespace churnlab
