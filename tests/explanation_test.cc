#include "core/explanation.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace churnlab {
namespace core {
namespace {

WindowedHistory FromSets(const std::vector<std::vector<Symbol>>& sets) {
  WindowedHistory history;
  for (size_t k = 0; k < sets.size(); ++k) {
    Window window;
    window.index = static_cast<int32_t>(k);
    window.begin_day = static_cast<retail::Day>(k) * 60;
    window.end_day = window.begin_day + 60;
    window.symbols = sets[k];
    std::sort(window.symbols.begin(), window.symbols.end());
    history.windows.push_back(std::move(window));
  }
  return history;
}

StabilityComputer Alpha2() {
  SignificanceOptions options;
  options.alpha = 2.0;
  return StabilityComputer::Make(options).ValueOrDie();
}

TEST(ExplanationEngine, ArgmaxMissingProductMatchesPaperDefinition) {
  // History: a bought 3x, b bought 1x; final window has neither. The
  // explanation must name a (the most significant missing product) first.
  const ExplanationEngine engine(Alpha2());
  const auto explanations =
      engine.Explain(FromSets({{1}, {1}, {1, 2}, {}}));
  ASSERT_EQ(explanations.size(), 4u);
  const WindowExplanation& last = explanations[3];
  ASSERT_GE(last.missing.size(), 2u);
  EXPECT_EQ(last.MostSignificantMissing(), 1u);
  EXPECT_GT(last.missing[0].significance, last.missing[1].significance);
}

TEST(ExplanationEngine, NoMissingWhenEverythingPresent) {
  const ExplanationEngine engine(Alpha2());
  const auto explanations = engine.Explain(FromSets({{1, 2}, {1, 2}}));
  EXPECT_TRUE(explanations[1].missing.empty());
  EXPECT_EQ(explanations[1].MostSignificantMissing(), kInvalidSymbol);
}

TEST(ExplanationEngine, FirstWindowHasNoExplanation) {
  const ExplanationEngine engine(Alpha2());
  const auto explanations = engine.Explain(FromSets({{1, 2}}));
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_TRUE(explanations[0].missing.empty());
  EXPECT_DOUBLE_EQ(explanations[0].drop_from_previous, 0.0);
}

TEST(ExplanationEngine, NewlyMissingFlagsOnlyFreshLosses) {
  // b present in window 1, missing from window 2 onward: newly_missing in
  // window 2, not in window 3.
  const ExplanationEngine engine(Alpha2());
  const auto explanations =
      engine.Explain(FromSets({{1, 2}, {1, 2}, {1}, {1}}));
  const auto find_b = [](const WindowExplanation& explanation) {
    for (const MissingSymbol& missing : explanation.missing) {
      if (missing.symbol == 2) return missing;
    }
    return MissingSymbol{};
  };
  EXPECT_TRUE(find_b(explanations[2]).newly_missing);
  EXPECT_FALSE(find_b(explanations[3]).newly_missing);
}

TEST(ExplanationEngine, SharesSumToStabilityDeficit) {
  // With no truncation, the significance shares of missing products sum to
  // exactly 1 - stability.
  ExplanationOptions options;
  options.top_k = 100;
  options.min_significance_share = 0.0;
  const ExplanationEngine engine(Alpha2(), options);
  const auto explanations =
      engine.Explain(FromSets({{1, 2, 3}, {1, 2, 3}, {1}}));
  const WindowExplanation& last = explanations[2];
  double share_sum = 0.0;
  for (const MissingSymbol& missing : last.missing) {
    share_sum += missing.significance_share;
  }
  EXPECT_NEAR(share_sum, 1.0 - last.stability, 1e-12);
}

TEST(ExplanationEngine, TopKTruncates) {
  ExplanationOptions options;
  options.top_k = 2;
  const ExplanationEngine engine(Alpha2(), options);
  const auto explanations =
      engine.Explain(FromSets({{1, 2, 3, 4, 5}, {}}));
  ASSERT_EQ(explanations.size(), 2u);
  EXPECT_EQ(explanations[1].missing.size(), 2u);
}

TEST(ExplanationEngine, MinShareFiltersNoise) {
  // Product 2 bought once long ago has tiny significance by window 5.
  ExplanationOptions options;
  options.min_significance_share = 0.2;
  const ExplanationEngine engine(Alpha2(), options);
  const auto explanations = engine.Explain(
      FromSets({{1, 2}, {1}, {1}, {1}, {1}, {1}}));
  for (const MissingSymbol& missing : explanations[5].missing) {
    EXPECT_GE(missing.significance_share, 0.2);
  }
}

TEST(ExplanationEngine, DropFromPreviousMatchesSeries) {
  const ExplanationEngine engine(Alpha2());
  const auto explanations =
      engine.Explain(FromSets({{1, 2}, {1, 2}, {1}}));
  // Window 1 stability 1.0; window 2 drops to S(1)/(S(1)+S(2)).
  EXPECT_NEAR(explanations[2].drop_from_previous,
              explanations[1].stability - explanations[2].stability, 1e-12);
  EXPECT_GT(explanations[2].drop_from_previous, 0.0);
}

TEST(ExplanationEngine, MissingSortedBySignificanceDescending) {
  const ExplanationEngine engine(Alpha2());
  const auto explanations = engine.Explain(
      FromSets({{1}, {1, 2}, {1, 2, 3}, {}}));
  const WindowExplanation& last = explanations[3];
  for (size_t i = 1; i < last.missing.size(); ++i) {
    EXPECT_GE(last.missing[i - 1].significance, last.missing[i].significance);
  }
}

}  // namespace
}  // namespace core
}  // namespace churnlab
