#include "rfm/rfm_model.h"

#include <gtest/gtest.h>

#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/roc.h"

namespace churnlab {
namespace rfm {
namespace {

retail::Dataset MakeScenario(size_t per_cohort, uint64_t seed = 21) {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = per_cohort;
  config.population.num_defecting = per_cohort;
  config.seed = seed;
  return datagen::MakePaperDataset(config).ValueOrDie();
}

TEST(RfmModel, MakeValidatesOptions) {
  RfmModelOptions bad_folds;
  bad_folds.cv_folds = 1;
  EXPECT_FALSE(RfmModel::Make(bad_folds).ok());
  RfmModelOptions bad_features;
  bad_features.features.use_recency = false;
  bad_features.features.use_frequency = false;
  bad_features.features.use_monetary = false;
  EXPECT_FALSE(RfmModel::Make(bad_features).ok());
  EXPECT_TRUE(RfmModel::Make(RfmModelOptions{}).ok());
}

TEST(RfmModel, ScoresAreProbabilities) {
  const retail::Dataset dataset = MakeScenario(60);
  const auto model = RfmModel::Make(RfmModelOptions{}).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  EXPECT_EQ(scores.num_rows(), 120u);
  for (size_t row = 0; row < scores.num_rows(); ++row) {
    for (int32_t window = 0; window < scores.num_windows(); ++window) {
      EXPECT_GE(scores.At(row, window), 0.0);
      EXPECT_LE(scores.At(row, window), 1.0);
    }
  }
}

TEST(RfmModel, DetectsAttritionAfterOnset) {
  const retail::Dataset dataset = MakeScenario(150);
  const auto model = RfmModel::Make(RfmModelOptions{}).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const auto series =
      eval::AurocPerWindow(dataset, scores,
                           eval::ScoreOrientation::kHigherIsPositive, 2)
          .ValueOrDie();
  double auroc_before = 0.0;
  double auroc_after = 0.0;
  for (const eval::WindowAuroc& point : series) {
    if (point.report_month == 14) auroc_before = point.auroc;
    if (point.report_month == 24) auroc_after = point.auroc;
  }
  EXPECT_NEAR(auroc_before, 0.5, 0.12);  // before onset: chance
  EXPECT_GT(auroc_after, 0.8);           // well after onset: detected
}

TEST(RfmModel, UnlabelledCustomersAreScoredToo) {
  retail::Dataset dataset = MakeScenario(40);
  // Strip the label of one customer.
  const retail::CustomerId victim = dataset.store().Customers().front();
  dataset.SetLabel(victim, {retail::Cohort::kUnlabeled, -1});
  const auto model = RfmModel::Make(RfmModelOptions{}).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset).ValueOrDie();
  const size_t row = scores.RowOf(victim).ValueOrDie();
  // The degraded customer still gets finite probabilities.
  for (int32_t window = 0; window < scores.num_windows(); ++window) {
    EXPECT_GE(scores.At(row, window), 0.0);
    EXPECT_LE(scores.At(row, window), 1.0);
  }
}

TEST(RfmModel, FailsWithoutAnyLabels) {
  retail::Dataset dataset = MakeScenario(10);
  for (const retail::CustomerId customer : dataset.store().Customers()) {
    dataset.SetLabel(customer, {retail::Cohort::kUnlabeled, -1});
  }
  const auto model = RfmModel::Make(RfmModelOptions{}).ValueOrDie();
  EXPECT_FALSE(model.ScoreDataset(dataset).ok());
}

TEST(RfmModel, DegradedInSampleScoringWithTinyCohorts) {
  // 3 labelled customers per class < cv_folds: the model falls back to
  // in-sample scoring rather than failing.
  retail::Dataset dataset = MakeScenario(3);
  const auto model = RfmModel::Make(RfmModelOptions{}).ValueOrDie();
  const auto scores = model.ScoreDataset(dataset);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
}

TEST(RfmModel, DeterministicGivenSeeds) {
  const retail::Dataset dataset = MakeScenario(40);
  const auto model = RfmModel::Make(RfmModelOptions{}).ValueOrDie();
  const auto a = model.ScoreDataset(dataset).ValueOrDie();
  const auto b = model.ScoreDataset(dataset).ValueOrDie();
  for (size_t row = 0; row < a.num_rows(); ++row) {
    for (int32_t window = 0; window < a.num_windows(); ++window) {
      EXPECT_DOUBLE_EQ(a.At(row, window), b.At(row, window));
    }
  }
}

}  // namespace
}  // namespace rfm
}  // namespace churnlab
