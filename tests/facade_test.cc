// The churnlab::api facade must be a zero-cost veneer: every handle
// delegates to the underlying subsystem and produces identical results to
// wiring the core directly.

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "churnlab.h"
#include "core/stability_model.h"
#include "serve/fleet.h"

namespace churnlab {
namespace {

const api::Dataset& TestDataset() {
  static const api::Dataset* dataset = [] {
    api::ScenarioConfig config;
    config.population.num_loyal = 25;
    config.population.num_defecting = 25;
    config.num_months = 18;
    config.seed = 7;
    return new api::Dataset(api::MakeScenario(config).ValueOrDie());
  }();
  return *dataset;
}

api::ScorerOptions TestScorerOptions() {
  api::ScorerOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  return options;
}

TEST(Facade, ScorerHandleMatchesRawCoreModel) {
  const api::Dataset& dataset = TestDataset();
  const api::ScorerOptions options = TestScorerOptions();

  const auto handle = api::ScorerHandle::Make(options).ValueOrDie();
  const api::ScoreMatrix via_facade =
      handle.ScoreDataset(dataset).ValueOrDie();

  const auto model = core::StabilityModel::Make(options).ValueOrDie();
  const api::ScoreMatrix via_core = model.ScoreDataset(dataset).ValueOrDie();

  ASSERT_EQ(via_facade.num_rows(), via_core.num_rows());
  ASSERT_EQ(via_facade.num_windows(), via_core.num_windows());
  ASSERT_EQ(via_facade.customers(), via_core.customers());
  for (size_t row = 0; row < via_facade.num_rows(); ++row) {
    for (int32_t window = 0; window < via_facade.num_windows(); ++window) {
      EXPECT_EQ(via_facade.At(row, window), via_core.At(row, window))
          << "row " << row << " window " << window;
    }
  }
}

TEST(Facade, ScorerHandlePerCustomerViewsWork) {
  const api::Dataset& dataset = TestDataset();
  const auto handle =
      api::ScorerHandle::Make(TestScorerOptions()).ValueOrDie();
  const api::CustomerId customer =
      dataset.CustomersWithCohort(api::Cohort::kDefecting).front();

  const api::StabilitySeries series =
      handle.ScoreCustomer(dataset, customer).ValueOrDie();
  EXPECT_FALSE(series.points.empty());

  const api::CustomerReport report =
      handle.AnalyzeCustomer(dataset, customer).ValueOrDie();
  EXPECT_EQ(report.customer, customer);
  EXPECT_FALSE(report.windows.empty());

  const api::SignificanceProfile profile =
      handle.ProfileCustomer(dataset, customer).ValueOrDie();
  EXPECT_EQ(profile.customer, customer);
}

TEST(Facade, FleetHandleMatchesRawFleetAndRoundTripsSnapshot) {
  const api::Dataset& dataset = TestDataset();
  api::FleetOptions options;
  options.scorer.window_span_days = 2 * api::kDaysPerMonth;
  options.num_shards = 8;

  // Day-ordered replay stream, as in production.
  const std::span<const api::Receipt> all = dataset.store().AllReceipts();
  std::vector<api::Receipt> replay(all.begin(), all.end());
  std::stable_sort(replay.begin(), replay.end(),
                   [](const api::Receipt& a, const api::Receipt& b) {
                     return a.day < b.day;
                   });
  const size_t half = replay.size() / 2;
  const std::span<const api::Receipt> first(replay.data(), half);
  const std::span<const api::Receipt> second(replay.data() + half,
                                             replay.size() - half);

  auto handle = api::FleetHandle::Make(options, dataset).ValueOrDie();
  auto raw = serve::ScoringFleet::Make(options, &dataset.taxonomy())
                 .ValueOrDie();

  const api::BatchReport handle_report =
      handle.IngestBatch(first).ValueOrDie();
  const api::BatchReport raw_report = raw.IngestBatch(first).ValueOrDie();
  EXPECT_EQ(handle_report.alerts.size(), raw_report.alerts.size());
  EXPECT_EQ(handle_report.receipts_ingested, raw_report.receipts_ingested);
  EXPECT_EQ(handle.NumCustomers(), raw.NumCustomers());

  // Snapshot through the facade, restore, continue; the continued handle
  // must agree with the raw fleet that never stopped.
  const std::string path = testing::TempDir() + "/facade_fleet.snap";
  ASSERT_TRUE(handle.SaveSnapshot(path).ok());
  auto restored = api::FleetHandle::Restore(path, dataset).ValueOrDie();
  EXPECT_EQ(restored.NumCustomers(), handle.NumCustomers());

  const api::BatchReport resumed_report =
      restored.IngestBatch(second).ValueOrDie();
  const api::BatchReport raw_second = raw.IngestBatch(second).ValueOrDie();
  ASSERT_EQ(resumed_report.alerts.size(), raw_second.alerts.size());
  for (size_t i = 0; i < resumed_report.alerts.size(); ++i) {
    EXPECT_EQ(resumed_report.alerts[i].customer,
              raw_second.alerts[i].customer);
    EXPECT_EQ(resumed_report.alerts[i].alert.window_index,
              raw_second.alerts[i].alert.window_index);
    EXPECT_EQ(resumed_report.alerts[i].alert.stability,
              raw_second.alerts[i].alert.stability);
  }

  const api::BatchReport handle_tail = restored.FinishAll().ValueOrDie();
  const api::BatchReport raw_tail = raw.FinishAll().ValueOrDie();
  EXPECT_EQ(handle_tail.alerts.size(), raw_tail.alerts.size());
}

TEST(Facade, LoadDatasetValidatesPath) {
  const auto empty = api::LoadDataset("");
  ASSERT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsInvalidArgument());
  EXPECT_FALSE(api::LoadDataset("/nonexistent/fleet.clb").ok());
}

TEST(Facade, DatasetRoundTripsThroughBinaryFormat) {
  const api::Dataset& dataset = TestDataset();
  const std::string path = testing::TempDir() + "/facade_dataset.clb";
  ASSERT_TRUE(dataset.SaveBinary(path).ok());
  const api::Dataset loaded = api::LoadDataset(path).ValueOrDie();
  EXPECT_EQ(loaded.store().num_receipts(), dataset.store().num_receipts());
}

TEST(Facade, EvalRunnerRunsGridSearch) {
  api::GridSearchOptions options;
  options.window_spans_months = {2};
  options.alphas = {2.0};
  options.folds = 2;
  // The test dataset spans 18 months; aim the objective at months (10, 16].
  options.onset_month = 10;
  const auto runner = api::EvalRunner::Make({1}).ValueOrDie();
  const api::GridSearchResult result =
      runner.GridSearch(TestDataset(), options).ValueOrDie();
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.best.window_span_months, 2);
}

}  // namespace
}  // namespace churnlab
