// Adversarial coverage of the incremental HTTP/1.1 parser: torn reads,
// hostile lengths, pipelining, and protocol-error taxonomy. The parser is
// the first thing untrusted bytes touch, so every rejection path must be
// cheap and every accept path must survive arbitrary recv() fragmentation.

#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace churnlab {
namespace net {
namespace {

HttpParser::Limits DefaultLimits() { return HttpParser::Limits{}; }

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser(DefaultLimits());
  ASSERT_TRUE(parser.Feed("GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  ASSERT_TRUE(parser.HasRequest());
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/health");
  EXPECT_TRUE(request.query.empty());
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "x");
}

TEST(HttpParser, SplitsQueryFromPath) {
  HttpParser parser(DefaultLimits());
  ASSERT_TRUE(parser.Feed("GET /v1/health?verbose=1&x=2 HTTP/1.1\r\n\r\n").ok());
  ASSERT_TRUE(parser.HasRequest());
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.path, "/v1/health");
  EXPECT_EQ(request.query, "verbose=1&x=2");
  EXPECT_EQ(request.target, "/v1/health?verbose=1&x=2");
}

TEST(HttpParser, HeaderNamesAreLowercased) {
  HttpParser parser(DefaultLimits());
  ASSERT_TRUE(
      parser.Feed("GET / HTTP/1.1\r\nCoNtEnT-TyPe: text/plain\r\n\r\n").ok());
  ASSERT_TRUE(parser.HasRequest());
  const HttpRequest request = parser.TakeRequest();
  ASSERT_NE(request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request.FindHeader("content-type"), "text/plain");
}

TEST(HttpParser, ReassemblesRequestTornAcrossEveryByteBoundary) {
  const std::string wire =
      "POST /v1/ingest HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "hello world"
      "GET /v1/health HTTP/1.1\r\n\r\n";
  // Feed one byte at a time — the worst torn-read pattern recv can produce.
  HttpParser parser(DefaultLimits());
  std::vector<HttpRequest> requests;
  for (const char byte : wire) {
    ASSERT_TRUE(parser.Feed(std::string_view(&byte, 1)).ok());
    while (parser.HasRequest()) {
      requests.push_back(parser.TakeRequest());
      ASSERT_TRUE(parser.Continue().ok());
    }
  }
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].method, "POST");
  EXPECT_EQ(requests[0].body, "hello world");
  EXPECT_EQ(requests[1].method, "GET");
  EXPECT_EQ(requests[1].path, "/v1/health");
}

TEST(HttpParser, PipelinedRequestsDrainInOrder) {
  HttpParser parser(DefaultLimits());
  ASSERT_TRUE(parser
                  .Feed("GET /a HTTP/1.1\r\n\r\n"
                        "GET /b HTTP/1.1\r\n\r\n"
                        "GET /c HTTP/1.1\r\n\r\n")
                  .ok());
  std::vector<std::string> paths;
  while (parser.HasRequest()) {
    paths.push_back(parser.TakeRequest().path);
    ASSERT_TRUE(parser.Continue().ok());
  }
  EXPECT_EQ(paths, (std::vector<std::string>{"/a", "/b", "/c"}));
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParser, HostileContentLengthRejectedWithoutBodyAllocation) {
  HttpParser parser(DefaultLimits());
  // A 2^60-ish length must be rejected the moment headers complete, long
  // before any body byte arrives — nothing should be reserved for it.
  const Status status = parser.Feed(
      "POST /v1/ingest HTTP/1.1\r\n"
      "Content-Length: 1152921504606846976\r\n"
      "\r\n");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsOutOfRange()) << status.ToString();
  // The parser buffered only the header section it was fed.
  EXPECT_LE(parser.buffered_bytes(), 256u);
}

TEST(HttpParser, NonNumericContentLengthRejected) {
  HttpParser parser(DefaultLimits());
  const Status status = parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(HttpParser, ConflictingContentLengthsRejected) {
  HttpParser parser(DefaultLimits());
  const Status status = parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(HttpParser, DuplicateAgreeingContentLengthsRejected) {
  // Request-smuggling hygiene (RFC 9112 §6.3): even IDENTICAL repeated
  // Content-Length copies are rejected — a lenient front proxy and a
  // lenient origin can disagree about which copy wins, desyncing bodies.
  HttpParser parser(DefaultLimits());
  const Status status = parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n"
      "abcd");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("duplicate Content-Length"),
            std::string::npos)
      << status.ToString();
}

TEST(HttpParser, DuplicateContentLengthAcrossCaseVariantsRejected) {
  // Header names are lowercased before comparison, so casing tricks don't
  // dodge the duplicate check.
  HttpParser parser(DefaultLimits());
  const Status status = parser.Feed(
      "POST / HTTP/1.1\r\ncontent-length: 4\r\nCONTENT-LENGTH: 4\r\n\r\n");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(HttpParser, DuplicateContentLengthSplitAcrossFeedsRejected) {
  // The duplicate must be caught even when the header section arrives one
  // byte at a time — the check runs on the parsed section, not the feed.
  HttpParser parser(DefaultLimits());
  const std::string wire =
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 12\r\n\r\n";
  Status status = Status::OK();
  for (char c : wire) {
    status = parser.Feed(std::string_view(&c, 1));
    if (!status.ok()) break;
  }
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(HttpParser, TransferEncodingUnsupported) {
  HttpParser parser(DefaultLimits());
  const Status status = parser.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented) << status.ToString();
}

TEST(HttpParser, OversizedHeaderSectionRejected) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  wire += "X-Filler: " + std::string(200, 'a') + "\r\n\r\n";
  const Status status = parser.Feed(wire);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsOutOfRange()) << status.ToString();
}

TEST(HttpParser, OversizedRequestLineRejected) {
  HttpParser::Limits limits;
  limits.max_request_line = 64;
  HttpParser parser(limits);
  const std::string wire =
      "GET /" + std::string(100, 'x') + " HTTP/1.1\r\n\r\n";
  const Status status = parser.Feed(wire);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsOutOfRange()) << status.ToString();
}

TEST(HttpParser, BodyLargerThanLimitRejectedEvenWhenDeclaredHonestly) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  const Status status = parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsOutOfRange()) << status.ToString();
}

TEST(HttpParser, MalformedRequestLineRejected) {
  for (const char* wire : {
           "GET\r\n\r\n",
           "GET /\r\n\r\n",
           "GET / HTTP/2.0\r\n\r\n",
           "GET / HTTP/1.7\r\n\r\n",
           " GET / HTTP/1.1\r\n\r\n",
           "G@T / HTTP/1.1\r\n\r\n",
       }) {
    HttpParser parser(DefaultLimits());
    const Status status = parser.Feed(wire);
    ASSERT_FALSE(status.ok()) << wire;
    EXPECT_TRUE(status.IsInvalidArgument()) << wire << ": "
                                            << status.ToString();
  }
}

TEST(HttpParser, MalformedHeaderRejected) {
  for (const char* wire : {
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
           "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
           "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
       }) {
    HttpParser parser(DefaultLimits());
    const Status status = parser.Feed(wire);
    ASSERT_FALSE(status.ok()) << wire;
    EXPECT_TRUE(status.IsInvalidArgument()) << wire << ": "
                                            << status.ToString();
  }
}

TEST(HttpParser, ErrorIsSticky) {
  HttpParser parser(DefaultLimits());
  ASSERT_FALSE(parser.Feed("BROKEN\r\n\r\n").ok());
  // A poisoned parser refuses everything after, even valid requests.
  EXPECT_FALSE(parser.Feed("GET / HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(parser.HasRequest());
}

TEST(HttpParser, KeepAliveSemantics) {
  struct Case {
    const char* wire;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},
  };
  for (const Case& test_case : cases) {
    HttpParser parser(DefaultLimits());
    ASSERT_TRUE(parser.Feed(test_case.wire).ok()) << test_case.wire;
    ASSERT_TRUE(parser.HasRequest()) << test_case.wire;
    EXPECT_EQ(parser.TakeRequest().keep_alive, test_case.keep_alive)
        << test_case.wire;
  }
}

TEST(HttpResponse, SerializeCarriesStatusHeadersAndLength) {
  HttpResponse response;
  response.status_code = 429;
  response.body = "{\"error\":{}}";
  response.headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeResponse(response, /*keep_alive=*/false);
  EXPECT_NE(wire.find("HTTP/1.1 429 "), std::string::npos) << wire;
  EXPECT_NE(wire.find("Content-Length: 12\r\n"), std::string::npos) << wire;
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos) << wire;
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos) << wire;
  EXPECT_NE(wire.find("\r\n\r\n{\"error\":{}}"), std::string::npos) << wire;
}

TEST(HttpResponse, SerializeKeepAlive) {
  HttpResponse response;
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos)
      << wire;
}

}  // namespace
}  // namespace net
}  // namespace churnlab
