#include "common/math_util.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(Sigmoid, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - Sigmoid(2.0), 1e-15);
}

TEST(Sigmoid, NoOverflowAtExtremes) {
  EXPECT_DOUBLE_EQ(Sigmoid(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(Sigmoid(-1000.0), 0.0);
  EXPECT_TRUE(std::isfinite(Sigmoid(710.0)));
}

TEST(Log1pExp, MatchesNaiveInSafeRange) {
  for (double x = -30.0; x <= 30.0; x += 0.37) {
    EXPECT_NEAR(Log1pExp(x), std::log1p(std::exp(x)), 1e-12) << "x=" << x;
  }
}

TEST(Log1pExp, AsymptoticBehaviour) {
  EXPECT_DOUBLE_EQ(Log1pExp(100.0), 100.0);
  EXPECT_NEAR(Log1pExp(-100.0), std::exp(-100.0), 1e-60);
}

TEST(ClampedPow, ExactInsideClamp) {
  EXPECT_NEAR(ClampedPow(2.0, 10.0, 100.0), 1024.0, 1e-9);
  EXPECT_NEAR(ClampedPow(2.0, -3.0, 100.0), 0.125, 1e-12);
  EXPECT_NEAR(ClampedPow(3.0, 0.0, 100.0), 1.0, 1e-12);
}

TEST(ClampedPow, ClampsLargeExponents) {
  EXPECT_DOUBLE_EQ(ClampedPow(2.0, 5000.0, 10.0), std::pow(2.0, 10.0));
  EXPECT_DOUBLE_EQ(ClampedPow(2.0, -5000.0, 10.0), std::pow(2.0, -10.0));
  EXPECT_TRUE(std::isfinite(ClampedPow(2.0, 1e9, 500.0)));
}

TEST(ClampedPow, FractionalBase) {
  // base < 1: positive exponents shrink, clamp symmetric.
  EXPECT_NEAR(ClampedPow(0.5, 3.0, 100.0), 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(ClampedPow(0.5, 5000.0, 10.0), std::pow(0.5, 10.0));
}

TEST(Dot, Basic) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(MeanVarianceStdDev, KnownValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);
}

TEST(MeanVariance, EdgeCases) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
}

TEST(Clamp, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.3, 0.0, 1.0), 0.3);
}

TEST(AlmostEqual, Tolerance) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(1.0, 1.05, 0.1));
}

TEST(FractionalRanks, NoTies) {
  const auto ranks = FractionalRanks({30.0, 10.0, 20.0});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(FractionalRanks, TiesAveraged) {
  const auto ranks = FractionalRanks({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(FractionalRanks, AllEqual) {
  const auto ranks = FractionalRanks({7.0, 7.0, 7.0});
  for (const double rank : ranks) EXPECT_DOUBLE_EQ(rank, 2.0);
}

TEST(FractionalRanks, SumIsInvariant) {
  // Ranks always sum to n(n+1)/2 regardless of ties.
  const auto ranks = FractionalRanks({5.0, 1.0, 5.0, 3.0, 1.0, 5.0});
  double sum = 0.0;
  for (const double rank : ranks) sum += rank;
  EXPECT_DOUBLE_EQ(sum, 21.0);
}

TEST(SolveLinearSystem, Identity) {
  const auto x = SolveLinearSystem({1, 0, 0, 1}, {3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x.ValueOrDie()[0], 3.0);
  EXPECT_DOUBLE_EQ(x.ValueOrDie()[1], 4.0);
}

TEST(SolveLinearSystem, General3x3) {
  // A = [[2,1,1],[1,3,2],[1,0,0]], b = [4,5,6] -> x = [6,15,-23].
  const auto x =
      SolveLinearSystem({2, 1, 1, 1, 3, 2, 1, 0, 0}, {4.0, 5.0, 6.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.ValueOrDie()[0], 6.0, 1e-9);
  EXPECT_NEAR(x.ValueOrDie()[1], 15.0, 1e-9);
  EXPECT_NEAR(x.ValueOrDie()[2], -23.0, 1e-9);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = SolveLinearSystem({0, 1, 1, 0}, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x.ValueOrDie()[0], 3.0);
  EXPECT_DOUBLE_EQ(x.ValueOrDie()[1], 2.0);
}

TEST(SolveLinearSystem, SingularFails) {
  EXPECT_TRUE(
      SolveLinearSystem({1, 2, 2, 4}, {1.0, 2.0}).status().IsInternal());
}

TEST(SolveLinearSystem, ShapeMismatchFails) {
  EXPECT_TRUE(SolveLinearSystem({1, 2, 3}, {1.0, 2.0})
                  .status()
                  .IsInvalidArgument());
}

TEST(SolveLinearSystem, ResidualIsSmall) {
  // Random-ish SPD-ish system; verify A x ~= b.
  const std::vector<double> a = {4, 1, 2, 1, 5, 1, 2, 1, 6};
  const std::vector<double> b = {1.0, -2.0, 3.0};
  const auto x_result = SolveLinearSystem(a, b);
  ASSERT_TRUE(x_result.ok());
  const std::vector<double>& x = x_result.ValueOrDie();
  for (size_t row = 0; row < 3; ++row) {
    double sum = 0.0;
    for (size_t col = 0; col < 3; ++col) sum += a[row * 3 + col] * x[col];
    EXPECT_NEAR(sum, b[row], 1e-10);
  }
}

}  // namespace
}  // namespace churnlab
