// End-to-end tests of the HTTP/1.1 scoring front end over a real
// ScoringFleet: every endpoint, the error taxonomy on the wire, overload
// shedding, keep-alive, graceful drain, and the acceptance property — a
// multi-client ingest flood coalesced by the server produces a fleet
// byte-identical to an offline replay of the same receipts in arrival
// order.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "net/backend.h"
#include "serve/fleet.h"
#include "serve/journal.h"

namespace churnlab {
namespace net {
namespace {

using retail::CustomerId;
using retail::Day;
using retail::Receipt;

serve::FleetOptions ServerFleetOptions() {
  serve::FleetOptions options;
  options.scorer.window_span_days = 30;
  options.num_shards = 4;
  options.num_threads = 1;
  options.granularity = retail::Granularity::kProduct;
  options.policy.beta = 0.5;
  options.policy.warmup_windows = 1;
  options.policy.drop_threshold = 2.0;
  return options;
}

std::string SnapshotOf(const serve::ScoringFleet& fleet) {
  BinaryWriter writer;
  EXPECT_TRUE(fleet.SaveSnapshot(&writer).ok());
  return writer.buffer();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Minimal blocking HTTP client over raw sockets (the server is the thing
// under test, so the client shares no code with it).

struct HttpReply {
  bool transport_ok = false;
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(const std::string& lowercase_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lowercase_name) return &value;
    }
    return nullptr;
  }
};

class ClientConnection {
 public:
  explicit ClientConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = inet_addr("127.0.0.1");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ClientConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool SendAll(std::string_view data) {
    while (!data.empty()) {
      const ssize_t sent = ::send(fd_, data.data(), data.size(), 0);
      if (sent <= 0) return false;
      data.remove_prefix(static_cast<size_t>(sent));
    }
    return true;
  }

  /// Reads exactly one response (framed by Content-Length). Leaves the
  /// connection open so keep-alive sequences can reuse it.
  HttpReply ReadReply() {
    HttpReply reply;
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Recv()) return reply;
    }
    const std::string head = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);

    std::istringstream lines(head);
    std::string line;
    if (!std::getline(lines, line)) return reply;
    if (line.size() < 12 || line.compare(0, 5, "HTTP/") != 0) return reply;
    reply.status = std::atoi(line.c_str() + 9);
    size_t content_length = 0;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      size_t value_begin = colon + 1;
      while (value_begin < line.size() && line[value_begin] == ' ') {
        ++value_begin;
      }
      std::string value = line.substr(value_begin);
      if (name == "content-length") {
        content_length = static_cast<size_t>(std::stoull(value));
      }
      reply.headers.emplace_back(std::move(name), std::move(value));
    }
    while (buffer_.size() < content_length) {
      if (!Recv()) return reply;
    }
    reply.body = buffer_.substr(0, content_length);
    buffer_.erase(0, content_length);
    reply.transport_ok = true;
    return reply;
  }

 private:
  bool Recv() {
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(got));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string RawRequest(const std::string& method, const std::string& path,
                       const std::string& body, bool close_connection) {
  std::string raw = method + " " + path + " HTTP/1.1\r\nHost: test\r\n";
  if (close_connection) raw += "Connection: close\r\n";
  if (!body.empty() || method == "POST") {
    raw += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  raw += "\r\n";
  raw += body;
  return raw;
}

/// One-shot request on a fresh connection.
HttpReply Call(uint16_t port, const std::string& method,
               const std::string& path, const std::string& body = "") {
  ClientConnection connection(port);
  if (!connection.connected()) return HttpReply{};
  if (!connection.SendAll(RawRequest(method, path, body, true))) {
    return HttpReply{};
  }
  return connection.ReadReply();
}

/// Extracts the integer after `"key":` in a flat JSON object.
uint64_t JsonUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << json;
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

// ---------------------------------------------------------------------------

std::string IngestBody(const std::vector<Receipt>& receipts) {
  std::string body = "{\"receipts\":[";
  for (size_t i = 0; i < receipts.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"customer\":" + std::to_string(receipts[i].customer) +
            ",\"day\":" + std::to_string(receipts[i].day);
    if (!receipts[i].items.empty()) {
      body += ",\"items\":[";
      for (size_t j = 0; j < receipts[i].items.size(); ++j) {
        if (j > 0) body += ',';
        body += std::to_string(receipts[i].items[j]);
      }
      body += ']';
    }
    body += '}';
  }
  body += "]}";
  return body;
}

Receipt MakeReceipt(CustomerId customer, Day day,
                    std::vector<retail::ItemId> items) {
  Receipt receipt;
  receipt.customer = customer;
  receipt.day = day;
  receipt.spend = 1.0;
  receipt.items = std::move(items);
  return receipt;
}

/// Fleet + backend + started server with an ephemeral port.
class TestServer {
 public:
  explicit TestServer(ServerOptions options = {},
                      FleetBackend::Options backend_options = {})
      : fleet_(serve::ScoringFleet::Make(ServerFleetOptions(), nullptr)
                   .ValueOrDie()),
        backend_(&fleet_, std::move(backend_options)) {
    options.port = 0;
    server_ = HttpServer::Make(std::move(options), &backend_).ValueOrDie();
    const Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestServer() {
    if (server_ != nullptr) (void)server_->Shutdown();
  }

  uint16_t port() const { return server_->port(); }
  HttpServer& server() { return *server_; }
  serve::ScoringFleet& fleet() { return fleet_; }

 private:
  serve::ScoringFleet fleet_;
  FleetBackend backend_;
  std::unique_ptr<HttpServer> server_;
};

TEST(HttpServerTest, HealthAndMetricsEndpoints) {
  TestServer server;
  const HttpReply health = Call(server.port(), "GET", "/v1/health");
  ASSERT_TRUE(health.transport_ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"receipts_total\":0"), std::string::npos)
      << health.body;
  ASSERT_NE(health.FindHeader("content-type"), nullptr);
  EXPECT_NE(health.FindHeader("content-type")->find("application/json"),
            std::string::npos);

  const HttpReply metrics = Call(server.port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.transport_ok);
  EXPECT_EQ(metrics.status, 200);
  ASSERT_NE(metrics.FindHeader("content-type"), nullptr);
  EXPECT_NE(metrics.FindHeader("content-type")->find("text/plain"),
            std::string::npos);
  // The health request above already bumped the request counter, so the
  // churnlab.net.* family must be present in the exposition.
  EXPECT_NE(metrics.body.find("churnlab_net_requests_total"),
            std::string::npos);
}

TEST(HttpServerTest, IngestThenQueryCustomer) {
  TestServer server;
  const std::vector<Receipt> receipts = {
      MakeReceipt(7, 1, {1, 2}),
      MakeReceipt(7, 40, {1}),
      MakeReceipt(9, 2, {3}),
  };
  const HttpReply ingest =
      Call(server.port(), "POST", "/v1/ingest", IngestBody(receipts));
  ASSERT_TRUE(ingest.transport_ok);
  EXPECT_EQ(ingest.status, 200) << ingest.body;
  EXPECT_EQ(JsonUint(ingest.body, "receipts_ingested"), 3u);
  EXPECT_EQ(JsonUint(ingest.body, "sequence"), 0u);
  // Coalesced slices cannot attribute first-sightings to a sub-span, so
  // new_customers is contractually 0 over HTTP (fleet.h SliceBatchReport).
  EXPECT_EQ(JsonUint(ingest.body, "new_customers"), 0u);

  const HttpReply customer = Call(server.port(), "GET", "/v1/customers/7");
  ASSERT_TRUE(customer.transport_ok);
  EXPECT_EQ(customer.status, 200) << customer.body;
  EXPECT_EQ(JsonUint(customer.body, "customer"), 7u);
  EXPECT_NE(customer.body.find("\"stability\""), std::string::npos);

  const HttpReply missing = Call(server.port(), "GET", "/v1/customers/9999");
  ASSERT_TRUE(missing.transport_ok);
  EXPECT_EQ(missing.status, 404) << missing.body;
  EXPECT_NE(missing.body.find("\"error\""), std::string::npos);

  const HttpReply bad_id = Call(server.port(), "GET", "/v1/customers/abc");
  ASSERT_TRUE(bad_id.transport_ok);
  EXPECT_EQ(bad_id.status, 400) << bad_id.body;
}

TEST(HttpServerTest, RoutingErrorsOnTheWire) {
  TestServer server;
  EXPECT_EQ(Call(server.port(), "GET", "/nope").status, 404);
  const HttpReply wrong_method = Call(server.port(), "DELETE", "/v1/health");
  EXPECT_EQ(wrong_method.status, 405);
  ASSERT_NE(wrong_method.FindHeader("allow"), nullptr);
  EXPECT_NE(wrong_method.FindHeader("allow")->find("GET"), std::string::npos);
}

TEST(HttpServerTest, MalformedIngestBodyIs400WithReason) {
  TestServer server;
  const HttpReply reply =
      Call(server.port(), "POST", "/v1/ingest", "{\"receipts\":[{\"x\":1}]}");
  ASSERT_TRUE(reply.transport_ok);
  EXPECT_EQ(reply.status, 400) << reply.body;
  EXPECT_NE(reply.body.find("receipt 0"), std::string::npos) << reply.body;
  // The fleet never saw the batch.
  EXPECT_EQ(JsonUint(Call(server.port(), "GET", "/v1/health").body,
                     "receipts_total"),
            0u);
}

TEST(HttpServerTest, OversizedBatchIs413) {
  ServerOptions options;
  options.max_receipts_per_request = 2;
  TestServer server(options);
  const HttpReply reply =
      Call(server.port(), "POST", "/v1/ingest",
           IngestBody({MakeReceipt(1, 1, {}), MakeReceipt(2, 1, {}),
                       MakeReceipt(3, 1, {})}));
  ASSERT_TRUE(reply.transport_ok);
  EXPECT_EQ(reply.status, 413) << reply.body;
}

TEST(HttpServerTest, OverloadShedsWith429AndRetryAfter) {
  ServerOptions options;
  options.admission.max_pending_bytes = 8;  // any real body overflows
  options.admission.retry_after_seconds = 3;
  TestServer server(options);
  const HttpReply reply = Call(server.port(), "POST", "/v1/ingest",
                               IngestBody({MakeReceipt(1, 1, {})}));
  ASSERT_TRUE(reply.transport_ok);
  EXPECT_EQ(reply.status, 429) << reply.body;
  ASSERT_NE(reply.FindHeader("retry-after"), nullptr);
  EXPECT_EQ(*reply.FindHeader("retry-after"), "3");
  // Sheds never reach the fleet.
  EXPECT_EQ(JsonUint(Call(server.port(), "GET", "/v1/health").body,
                     "receipts_total"),
            0u);
}

TEST(HttpServerTest, OverloadFailpointForcesSheddingWithoutPressure) {
  FailpointRegistry::Global().DisarmAll();
  TestServer server;
  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec("net.overload=error").ok());
  const HttpReply reply = Call(server.port(), "POST", "/v1/ingest",
                               IngestBody({MakeReceipt(1, 1, {})}));
  FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(reply.transport_ok);
  EXPECT_EQ(reply.status, 500) << reply.body;
  EXPECT_NE(reply.body.find("\"error\""), std::string::npos);
  // The server survives the injected fault and keeps serving.
  EXPECT_EQ(Call(server.port(), "GET", "/v1/health").status, 200);
}

TEST(HttpServerTest, KeepAliveServesSequentialRequestsOnOneConnection) {
  TestServer server;
  ClientConnection connection(server.port());
  ASSERT_TRUE(connection.connected());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(connection.SendAll(
        RawRequest("GET", "/v1/health", "", /*close_connection=*/false)));
    const HttpReply reply = connection.ReadReply();
    ASSERT_TRUE(reply.transport_ok) << "request " << i;
    EXPECT_EQ(reply.status, 200);
    ASSERT_NE(reply.FindHeader("connection"), nullptr);
    EXPECT_EQ(*reply.FindHeader("connection"), "keep-alive");
  }
  ASSERT_TRUE(connection.SendAll(
      RawRequest("GET", "/v1/health", "", /*close_connection=*/true)));
  const HttpReply last = connection.ReadReply();
  ASSERT_TRUE(last.transport_ok);
  ASSERT_NE(last.FindHeader("connection"), nullptr);
  EXPECT_EQ(*last.FindHeader("connection"), "close");
}

TEST(HttpServerTest, SnapshotEndpointWithoutPathIs409) {
  TestServer server;  // no snapshot path configured
  const HttpReply reply = Call(server.port(), "POST", "/v1/snapshot");
  ASSERT_TRUE(reply.transport_ok);
  EXPECT_EQ(reply.status, 409) << reply.body;
}

TEST(HttpServerTest, SnapshotEndpointWritesConfiguredPath) {
  const std::string path = ::testing::TempDir() + "/net_server_snap.bin";
  std::remove(path.c_str());
  FleetBackend::Options backend_options;
  backend_options.snapshot_path = path;
  backend_options.snapshot_append = false;
  TestServer server(ServerOptions{}, backend_options);
  ASSERT_EQ(Call(server.port(), "POST", "/v1/ingest",
                 IngestBody({MakeReceipt(1, 1, {4}), MakeReceipt(2, 1, {5})}))
                .status,
            200);
  const HttpReply reply = Call(server.port(), "POST", "/v1/snapshot");
  ASSERT_TRUE(reply.transport_ok);
  EXPECT_EQ(reply.status, 200) << reply.body;
  EXPECT_NE(reply.body.find(path), std::string::npos) << reply.body;
  EXPECT_EQ(ReadFileBytes(path), SnapshotOf(server.fleet()));
  std::remove(path.c_str());
}

TEST(HttpServerTest, DrainFlushesFinalSnapshotAndStopsAccepting) {
  const std::string path = ::testing::TempDir() + "/net_server_drain.bin";
  std::remove(path.c_str());
  FleetBackend::Options backend_options;
  backend_options.snapshot_path = path;
  backend_options.snapshot_append = false;
  ServerOptions options;
  options.poll_interval_ms = 10;
  auto server = std::make_unique<TestServer>(options, backend_options);
  const uint16_t port = server->port();
  ASSERT_EQ(Call(port, "POST", "/v1/ingest",
                 IngestBody({MakeReceipt(3, 1, {1})}))
                .status,
            200);
  server->server().RequestDrain();
  const Status drained = server->server().Wait();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_TRUE(server->server().draining());
  EXPECT_EQ(ReadFileBytes(path), SnapshotOf(server->fleet()));
  // The listen socket is gone: new connections fail outright.
  ClientConnection refused(port);
  EXPECT_TRUE(!refused.connected() ||
              !Call(port, "GET", "/v1/health").transport_ok);
  server.reset();
  std::remove(path.c_str());
}

// The acceptance property: >= 8 concurrent clients flooding >= 50k receipts
// through coalesced ingest (with admission shedding possible and retried)
// leave the fleet byte-identical to an offline replay of the same
// per-request batches in arrival-sequence order.
TEST(HttpServerTest, FloodCoalescingMatchesOfflineReplayByteForByte) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 125;
  constexpr int kReceiptsPerRequest = 50;  // 8 * 125 * 50 = 50,000

  ServerOptions options;
  options.num_threads = 8;
  // Tight enough that concurrent bodies can overflow and shed; clients
  // retry on 429/503 until accepted.
  options.admission.max_inflight_requests = 4;
  options.coalescer.max_batch_receipts = 1024;
  TestServer server(options);

  struct SentRequest {
    uint64_t sequence = 0;
    std::vector<Receipt> receipts;
  };
  std::vector<std::vector<SentRequest>> sent(kClients);
  std::atomic<uint64_t> shed_count{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        std::vector<Receipt> receipts;
        receipts.reserve(kReceiptsPerRequest);
        for (int i = 0; i < kReceiptsPerRequest; ++i) {
          // Disjoint customer universes per client; days advance with the
          // request index, so per-customer order matches arrival order.
          const auto customer =
              static_cast<CustomerId>(c * 100000 + i % 50);
          receipts.push_back(MakeReceipt(
              customer, static_cast<Day>(1 + r * 3),
              {static_cast<retail::ItemId>(i % 7),
               static_cast<retail::ItemId>(100 + r % 3)}));
        }
        const std::string body = IngestBody(receipts);
        HttpReply reply;
        for (;;) {
          reply = Call(server.port(), "POST", "/v1/ingest", body);
          ASSERT_TRUE(reply.transport_ok);
          if (reply.status == 429 || reply.status == 503) {
            shed_count.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          break;
        }
        ASSERT_EQ(reply.status, 200) << reply.body;
        ASSERT_EQ(JsonUint(reply.body, "receipts_ingested"),
                  static_cast<uint64_t>(kReceiptsPerRequest));
        SentRequest record;
        record.sequence = JsonUint(reply.body, "sequence");
        record.receipts = std::move(receipts);
        sent[c].push_back(std::move(record));
      }
    });
  }
  for (std::thread& client : clients) client.join();

  const HttpReply health = Call(server.port(), "GET", "/v1/health");
  ASSERT_EQ(health.status, 200);
  EXPECT_EQ(JsonUint(health.body, "receipts_total"),
            static_cast<uint64_t>(kClients) * kRequestsPerClient *
                kReceiptsPerRequest);
  EXPECT_EQ(JsonUint(health.body, "customers_total"),
            static_cast<uint64_t>(kClients) * 50);

  // Reconstruct the arrival order from the sequence numbers and replay it
  // offline through an identically-configured fleet.
  std::map<uint64_t, const SentRequest*> by_sequence;
  for (const auto& client_requests : sent) {
    for (const SentRequest& request : client_requests) {
      ASSERT_TRUE(by_sequence.emplace(request.sequence, &request).second)
          << "duplicate sequence " << request.sequence;
    }
  }
  serve::ScoringFleet offline =
      serve::ScoringFleet::Make(ServerFleetOptions(), nullptr).ValueOrDie();
  for (const auto& [sequence, request] : by_sequence) {
    const Result<serve::BatchReport> report = offline.IngestBatch(
        std::span<const Receipt>(request->receipts));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->rejected.empty());
  }

  EXPECT_EQ(SnapshotOf(server.fleet()), SnapshotOf(offline))
      << "coalesced server state diverged from arrival-order replay ("
      << shed_count.load() << " sheds during flood)";
}

// The durability property end to end through the HTTP stack: every
// acknowledged ingest is either captured by the checkpointed snapshot or
// replayable from the journal, and recovery reproduces the live fleet's
// state byte-for-byte — without any cooperation from the dying server
// (nothing here drains before the journal is scanned).
TEST(HttpServerTest, JournaledIngestRecoversServerStateByteForByte) {
  const std::string dir = ::testing::TempDir() + "/net_server_journal";
  const std::string snapshot_path =
      ::testing::TempDir() + "/net_server_journal_state.snap";
  std::filesystem::remove_all(dir);
  std::remove(snapshot_path.c_str());

  serve::JournalOptions journal_options;
  journal_options.directory = dir;
  journal_options.fsync = serve::FsyncPolicy::kNone;
  Result<serve::IngestJournal> journal =
      serve::IngestJournal::Open(journal_options);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  serve::ScoringFleet fleet =
      serve::ScoringFleet::Make(ServerFleetOptions(), nullptr).ValueOrDie();
  FleetBackend::Options backend_options;
  backend_options.snapshot_path = snapshot_path;
  backend_options.snapshot_append = true;
  backend_options.journal = &*journal;
  FleetBackend backend(&fleet, backend_options);
  ServerOptions server_options;
  server_options.port = 0;
  std::unique_ptr<HttpServer> server =
      HttpServer::Make(server_options, &backend).ValueOrDie();
  ASSERT_TRUE(server->Start().ok());

  // Checkpointed prefix: three receipts, then an explicit snapshot (which
  // checkpoints the journal at watermark 3 and truncates behind it).
  const HttpReply first =
      Call(server->port(), "POST", "/v1/ingest",
           IngestBody({MakeReceipt(7, 1, {1, 2}), MakeReceipt(8, 1, {3}),
                       MakeReceipt(7, 40, {1})}));
  ASSERT_EQ(first.status, 200) << first.body;
  EXPECT_EQ(JsonUint(first.body, "sequence"), 0u);
  ASSERT_EQ(Call(server->port(), "POST", "/v1/snapshot").status, 200);

  // Journal-only suffix: acknowledged but never snapshotted.
  const HttpReply second =
      Call(server->port(), "POST", "/v1/ingest",
           IngestBody({MakeReceipt(9, 2, {4}), MakeReceipt(7, 70, {2})}));
  ASSERT_EQ(second.status, 200) << second.body;
  EXPECT_EQ(JsonUint(second.body, "sequence"), 3u);

  const std::string oracle = SnapshotOf(fleet);

  // "Crash": scan the on-disk journal read-only while the server is still
  // live — exactly what a recovering process would find after kill -9.
  serve::JournalOptions scan_options;
  scan_options.directory = dir;
  scan_options.recover = true;
  scan_options.read_only = true;
  serve::JournalRecovery recovery;
  Result<serve::IngestJournal> scan =
      serve::IngestJournal::Open(scan_options, &recovery);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(recovery.watermark, 3u);
  EXPECT_EQ(recovery.next_sequence, 5u);
  ASSERT_FALSE(recovery.frames.empty());
  EXPECT_EQ(recovery.frames.front().first_sequence, 3u);

  Result<serve::ScoringFleet> recovered = serve::ScoringFleet::Recover(
      recovery, snapshot_path, ServerFleetOptions(), nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SnapshotOf(*recovered), oracle)
      << "recovered fleet diverged from the live server's state";

  ASSERT_TRUE(server->Shutdown().ok());
  server.reset();
  std::filesystem::remove_all(dir);
  std::remove(snapshot_path.c_str());
}

// A second termination signal during a drain means NOW: the process exits
// immediately with a nonzero status and a structured drain_forced log
// event, instead of the signal being swallowed while the drain runs.
TEST(HttpServerTest, SecondTerminationSignalForcesImmediateExit) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        serve::ScoringFleet fleet =
            serve::ScoringFleet::Make(ServerFleetOptions(), nullptr)
                .ValueOrDie();
        FleetBackend backend(&fleet, FleetBackend::Options{});
        ServerOptions options;
        options.port = 0;
        std::unique_ptr<HttpServer> server =
            HttpServer::Make(options, &backend).ValueOrDie();
        if (!server->Start().ok()) ::_exit(97);
        if (!server->InstallSignalHandler().ok()) ::_exit(98);
        ::raise(SIGTERM);  // first: begins the graceful drain
        ::raise(SIGTERM);  // second: forced exit from the handler
        ::_exit(99);       // unreachable
      },
      ::testing::ExitedWithCode(3), "drain_forced");
}

}  // namespace
}  // namespace net
}  // namespace churnlab
