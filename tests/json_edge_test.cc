// Edge cases of the obs JSON layer that the telemetry formats lean on:
// control-character escaping (log fields and thread labels may carry
// arbitrary bytes), non-finite doubles (gauges can legitimately hold
// inf/nan), and quantile export of empty histograms.

#include "obs/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace churnlab {
namespace obs {
namespace {

TEST(JsonEdge, ControlCharactersAreEscaped) {
  std::string raw;
  for (char c = 1; c < 0x20; ++c) raw.push_back(c);
  raw += "\"\\/plain";
  raw.push_back('\0');

  JsonWriter json;
  json.BeginObject().Key("s").String(raw).EndObject();
  const std::string& doc = json.str();

  // No raw control byte may survive into the document.
  for (const char c : doc) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte in: " << doc;
  }

  // And the escapes must round-trip through the parser byte for byte.
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* value = parsed->Find("s");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->string, raw);
}

TEST(JsonEdge, QuoteAndBackslashEscapes) {
  JsonWriter json;
  json.BeginObject().Key("s").String("a\"b\\c").EndObject();
  EXPECT_NE(json.str().find("a\\\"b\\\\c"), std::string::npos) << json.str();
}

TEST(JsonEdge, NonFiniteDoublesSerializeAsNull) {
  JsonWriter json;
  json.BeginArray()
      .Double(std::numeric_limits<double>::quiet_NaN())
      .Double(std::numeric_limits<double>::infinity())
      .Double(-std::numeric_limits<double>::infinity())
      .Double(1.5)
      .EndArray();
  EXPECT_EQ(json.str(), "[null,null,null,1.5]");

  auto parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->array.size(), 4u);
  EXPECT_EQ(parsed->array[0].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(parsed->array[3].number, 1.5);
}

TEST(JsonEdge, EmptyHistogramExportsZeroQuantiles) {
  Histogram histogram(HistogramOptions::ExponentialLatency());
  JsonWriter json;
  JsonExporter::WriteHistogram(histogram.Snapshot(), &json);

  auto parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok()) << json.str();
  ASSERT_TRUE(parsed->is_object());
  for (const char* quantile : {"p50", "p90", "p99"}) {
    const JsonValue* value = parsed->Find(quantile);
    ASSERT_NE(value, nullptr) << quantile;
    EXPECT_EQ(value->kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(value->number, 0.0) << quantile;
  }
  const JsonValue* count = parsed->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 0.0);
}

TEST(JsonEdge, EmptyHistogramPercentileIsZeroForAnyQuantile) {
  const HistogramSnapshot empty;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(empty.Percentile(q), 0.0) << q;
  }
}

}  // namespace
}  // namespace obs
}  // namespace churnlab
