#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedSamplesStayInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t value = rng.UniformInt(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double value = rng.NextDouble();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = rng.Normal(2.0, 3.0);
    sum += value;
    sum_sq += value * value;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(variance, 9.0, 0.4);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatchesParameter) {
  const double mean = GetParam();
  Rng rng(31);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int64_t value = rng.Poisson(mean);
    ASSERT_GE(value, 0);
    sum += static_cast<double>(value);
  }
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.03));
}

// 100.0 exercises the normal-approximation branch (> 64).
INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 4.0, 30.0, 100.0));

TEST(Rng, PoissonZeroAndNegativeMeans) {
  Rng rng(37);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(Rng, GammaMomentsMatch) {
  Rng rng(41);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(6.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);  // mean = shape * scale
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(43);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = rng.Gamma(0.5, 2.0);
    ASSERT_GT(value, 0.0);
    sum += value;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(53);
  for (int round = 0; round < 50; ++round) {
    const auto sample = rng.SampleWithoutReplacement(100, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const size_t index : sample) EXPECT_LT(index, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementDenseAndOversized) {
  Rng rng(59);
  const auto all = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(std::set<size_t>(all.begin(), all.end()).size(), 5u);
  const auto oversized = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(oversized.size(), 3u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(61);
  (void)parent_copy.NextUint64();  // account for the fork's draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent_copy.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfDistribution, UniformWhenExponentZero) {
  Rng rng(67);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (const int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
  }
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, FrequenciesDecreaseWithRankAndMatchTheory) {
  const double s = GetParam();
  Rng rng(71);
  const size_t n_values = 50;
  ZipfDistribution zipf(n_values, s);
  std::vector<int> counts(n_values, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const size_t value = zipf.Sample(&rng);
    ASSERT_LT(value, n_values);
    ++counts[value];
  }
  // Head frequencies decrease (allow noise at the tail).
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[1], counts[9]);
  // Compare the head frequency to the analytic Zipf mass.
  double normaliser = 0.0;
  for (size_t i = 0; i < n_values; ++i) {
    normaliser += std::pow(1.0 / static_cast<double>(i + 1), s);
  }
  const double expected_head = 1.0 / normaliser;
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, expected_head,
              expected_head * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.5, 0.9, 1.0, 1.2, 2.0));

TEST(ZipfDistribution, SingleValueAlwaysZero) {
  Rng rng(73);
  ZipfDistribution zipf(1, 1.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(DiscreteDistribution, MatchesWeights) {
  Rng rng(79);
  DiscreteDistribution dist({1.0, 3.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(&rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.6, 0.01);
}

TEST(DiscreteDistribution, ZeroWeightNeverSampled) {
  Rng rng(83);
  DiscreteDistribution dist({0.0, 1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    const size_t value = dist.Sample(&rng);
    EXPECT_TRUE(value == 1 || value == 3);
  }
}

TEST(DiscreteDistribution, SingleElement) {
  Rng rng(89);
  DiscreteDistribution dist({42.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Sample(&rng), 0u);
}

}  // namespace
}  // namespace churnlab
