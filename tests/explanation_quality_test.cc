#include "eval/explanation_quality.h"

#include <gtest/gtest.h>

namespace churnlab {
namespace eval {
namespace {

datagen::PaperScenarioOutput MakeScenario(uint64_t seed = 91) {
  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 60;
  config.population.num_defecting = 60;
  config.seed = seed;
  return datagen::MakePaperScenario(config).ValueOrDie();
}

ExplanationQualityOptions DefaultOptions() {
  ExplanationQualityOptions options;
  options.stability.significance.alpha = 2.0;
  options.stability.window_span_months = 2;
  return options;
}

TEST(ExplanationQuality, GradesDefectorsOnly) {
  const auto scenario = MakeScenario();
  const auto result =
      ExplanationQuality::Run(scenario, DefaultOptions()).ValueOrDie();
  EXPECT_GT(result.customers_graded, 0u);
  EXPECT_LE(result.customers_graded, 60u);
  EXPECT_GT(result.windows_graded, 0u);
  EXPECT_GT(result.reported_products, 0u);
}

TEST(ExplanationQuality, ExplanationsBeatChanceByAWideMargin) {
  // A random "explanation" would name an arbitrary repertoire segment;
  // with ~26 repertoire segments and a handful lost near any window, chance
  // precision is well under 0.3. The model must do far better.
  const auto scenario = MakeScenario();
  const auto result =
      ExplanationQuality::Run(scenario, DefaultOptions()).ValueOrDie();
  EXPECT_GT(result.precision, 0.6);
  EXPECT_GT(result.top1_accuracy, 0.6);
  EXPECT_GT(result.recall, 0.05);
}

TEST(ExplanationQuality, MetricsAreProbabilities) {
  const auto scenario = MakeScenario(92);
  const auto result =
      ExplanationQuality::Run(scenario, DefaultOptions()).ValueOrDie();
  EXPECT_GE(result.precision, 0.0);
  EXPECT_LE(result.precision, 1.0);
  EXPECT_GE(result.top1_accuracy, 0.0);
  EXPECT_LE(result.top1_accuracy, 1.0);
  EXPECT_GE(result.recall, 0.0);
  EXPECT_LE(result.recall, 1.0);
}

TEST(ExplanationQuality, LargerTopKNeverLowersRecall) {
  const auto scenario = MakeScenario();
  ExplanationQualityOptions small = DefaultOptions();
  small.top_k = 1;
  ExplanationQualityOptions large = DefaultOptions();
  large.top_k = 6;
  const auto small_result =
      ExplanationQuality::Run(scenario, small).ValueOrDie();
  const auto large_result =
      ExplanationQuality::Run(scenario, large).ValueOrDie();
  EXPECT_GE(large_result.recall, small_result.recall);
}

TEST(ExplanationQuality, ValidationErrors) {
  const auto scenario = MakeScenario();
  ExplanationQualityOptions zero_k = DefaultOptions();
  zero_k.top_k = 0;
  EXPECT_FALSE(ExplanationQuality::Run(scenario, zero_k).ok());
  ExplanationQualityOptions zero_windows = DefaultOptions();
  zero_windows.windows_after_onset = 0;
  EXPECT_FALSE(ExplanationQuality::Run(scenario, zero_windows).ok());
  ExplanationQualityOptions product_granularity = DefaultOptions();
  product_granularity.stability.granularity = retail::Granularity::kProduct;
  EXPECT_FALSE(ExplanationQuality::Run(scenario, product_granularity).ok());
}

}  // namespace
}  // namespace eval
}  // namespace churnlab
