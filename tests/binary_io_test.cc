#include "common/binary_io.h"

#include <cstdio>
#include <limits>

#include <gtest/gtest.h>

namespace churnlab {
namespace {

TEST(BinaryIo, VarintRoundTripSmall) {
  BinaryWriter writer;
  writer.WriteVarint(0);
  writer.WriteVarint(1);
  writer.WriteVarint(127);
  writer.WriteVarint(128);
  writer.WriteVarint(300);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(), 0u);
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(), 1u);
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(), 127u);
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(), 128u);
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(), 300u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIo, VarintRoundTripMax) {
  BinaryWriter writer;
  writer.WriteVarint(std::numeric_limits<uint64_t>::max());
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadVarint().ValueOrDie(),
            std::numeric_limits<uint64_t>::max());
}

TEST(BinaryIo, VarintEncodingIsCompact) {
  BinaryWriter writer;
  writer.WriteVarint(5);
  EXPECT_EQ(writer.buffer().size(), 1u);
  BinaryWriter writer2;
  writer2.WriteVarint(128);
  EXPECT_EQ(writer2.buffer().size(), 2u);
}

TEST(BinaryIo, SignedVarintRoundTrip) {
  BinaryWriter writer;
  const int64_t values[] = {0, -1, 1, -64, 63, -1000000,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (const int64_t value : values) writer.WriteSignedVarint(value);
  BinaryReader reader(writer.buffer());
  for (const int64_t value : values) {
    EXPECT_EQ(reader.ReadSignedVarint().ValueOrDie(), value);
  }
}

TEST(BinaryIo, ZigZagKeepsSmallMagnitudesSmall) {
  BinaryWriter writer;
  writer.WriteSignedVarint(-1);
  EXPECT_EQ(writer.buffer().size(), 1u);
}

TEST(BinaryIo, DoubleRoundTrip) {
  BinaryWriter writer;
  const double values[] = {0.0, -0.0, 3.141592653589793, -1e300, 1e-300,
                           std::numeric_limits<double>::infinity()};
  for (const double value : values) writer.WriteDouble(value);
  BinaryReader reader(writer.buffer());
  for (const double value : values) {
    EXPECT_EQ(reader.ReadDouble().ValueOrDie(), value);
  }
}

TEST(BinaryIo, StringRoundTrip) {
  BinaryWriter writer;
  writer.WriteString("");
  writer.WriteString("hello");
  writer.WriteString(std::string("with\0null", 9));
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "");
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "hello");
  EXPECT_EQ(reader.ReadString().ValueOrDie(), std::string("with\0null", 9));
}

TEST(BinaryIo, TruncatedVarintFails) {
  BinaryReader reader(std::string("\x80", 1));  // continuation, no next byte
  EXPECT_TRUE(reader.ReadVarint().status().IsOutOfRange());
}

TEST(BinaryIo, OverlongVarintFails) {
  // 11 bytes of continuation overflows 64 bits.
  BinaryReader reader(std::string(11, '\xFF'));
  EXPECT_TRUE(reader.ReadVarint().status().IsOutOfRange());
}

TEST(BinaryIo, TruncatedDoubleFails) {
  BinaryReader reader(std::string(4, 'x'));
  EXPECT_TRUE(reader.ReadDouble().status().IsOutOfRange());
}

TEST(BinaryIo, TruncatedStringFails) {
  BinaryWriter writer;
  writer.WriteVarint(100);  // declares 100 bytes, provides none
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadString().status().IsOutOfRange());
}

TEST(BinaryIo, ReadBytesClampsUntrustedLengthAgainstRemaining) {
  // Regression: ReadBytes used to trust the caller's length and substr
  // past the buffer. A hostile length prefix — even a multi-exabyte one —
  // must fail as InvalidArgument without allocating.
  BinaryReader reader(std::string("abc"));
  const auto too_big = reader.ReadBytes(4);
  ASSERT_FALSE(too_big.ok());
  EXPECT_TRUE(too_big.status().IsInvalidArgument());

  BinaryReader hostile(std::string("abc"));
  EXPECT_TRUE(
      hostile.ReadBytes(size_t{1} << 60).status().IsInvalidArgument());

  // The failed read consumes nothing; an exact-size read still works.
  EXPECT_EQ(reader.remaining(), 3u);
  EXPECT_EQ(reader.ReadBytes(3).ValueOrDie(), "abc");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIo, AppendToFileConcatenates) {
  const std::string path = testing::TempDir() + "/churnlab_append_test.bin";
  BinaryWriter first;
  first.WriteString("one");
  ASSERT_TRUE(first.SaveToFile(path).ok());
  BinaryWriter second;
  second.WriteString("two");
  ASSERT_TRUE(second.AppendToFile(path).ok());
  auto reader = BinaryReader::OpenFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadString().ValueOrDie(), "one");
  EXPECT_EQ(reader->ReadString().ValueOrDie(), "two");
  EXPECT_TRUE(reader->AtEnd());

  // SaveToFile truncates; AppendToFile creates when missing.
  ASSERT_TRUE(second.SaveToFile(path).ok());
  auto truncated = BinaryReader::OpenFile(path);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->ReadString().ValueOrDie(), "two");
  EXPECT_TRUE(truncated->AtEnd());
  std::remove(path.c_str());

  BinaryWriter fresh;
  fresh.WriteString("first write");
  ASSERT_TRUE(fresh.AppendToFile(path).ok());
  auto created = BinaryReader::OpenFile(path);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->ReadString().ValueOrDie(), "first write");
  std::remove(path.c_str());
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/churnlab_binary_test.bin";
  BinaryWriter writer;
  writer.WriteVarint(7);
  writer.WriteString("disk");
  ASSERT_TRUE(writer.SaveToFile(path).ok());
  auto reader = BinaryReader::OpenFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadVarint().ValueOrDie(), 7u);
  EXPECT_EQ(reader->ReadString().ValueOrDie(), "disk");
  std::remove(path.c_str());
}

TEST(BinaryIo, OpenMissingFileFails) {
  EXPECT_TRUE(
      BinaryReader::OpenFile("/nonexistent/nope.bin").status().IsIOError());
}

TEST(BinaryIo, RemainingTracksConsumption) {
  BinaryWriter writer;
  writer.WriteDouble(1.0);
  writer.WriteDouble(2.0);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), 16u);
  ASSERT_TRUE(reader.ReadDouble().ok());
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.ReadDouble().ok());
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace churnlab
