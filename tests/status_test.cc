#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace churnlab {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad alpha");
  EXPECT_EQ(status.ToString(), "Invalid argument: bad alpha");
}

TEST(Status, AllCodesHaveDistinctPredicates) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_FALSE(Status::IOError("x").IsNotFound());
}

TEST(Status, WithContextPrependsAndPreservesCode) {
  const Status status =
      Status::IOError("disk full").WithContext("saving dataset");
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(status.message(), "saving dataset: disk full");
}

TEST(Status, WithContextIsNoOpOnOk) {
  const Status status = Status::OK().WithContext("anything");
  EXPECT_TRUE(status.ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(Status, CopyableAndCheap) {
  const Status original = Status::Internal("boom");
  const Status copy = original;  // shared state
  EXPECT_EQ(copy, original);
}

TEST(StatusCodeToString, CoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(Result, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(Result, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(Result, OkStatusIsCoercedToInternalError) {
  Result<int> result = Status::OK();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(Result, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  const std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

TEST(Result, ValueOrReturnsValueOnSuccess) {
  Result<int> result = 7;
  EXPECT_EQ(result.ValueOr(-1), 7);
}

TEST(Result, ArrowOperatorOnValue) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

namespace macro_helpers {
Status FailIf(bool fail) {
  if (fail) return Status::Internal("requested failure");
  return Status::OK();
}

Status Chain(bool fail) {
  CHURNLAB_RETURN_NOT_OK(FailIf(fail));
  return Status::OK();
}

Result<int> Half(int value) {
  if (value % 2 != 0) return Status::InvalidArgument("odd");
  return value / 2;
}

Result<int> Quarter(int value) {
  CHURNLAB_ASSIGN_OR_RETURN(const int half, Half(value));
  CHURNLAB_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}
}  // namespace macro_helpers

TEST(Macros, ReturnNotOkPropagates) {
  EXPECT_TRUE(macro_helpers::Chain(false).ok());
  EXPECT_TRUE(macro_helpers::Chain(true).IsInternal());
}

TEST(Macros, AssignOrReturnChains) {
  const Result<int> ok = macro_helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 2);
  EXPECT_TRUE(macro_helpers::Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(macro_helpers::Quarter(7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace churnlab
