#include "core/online_scorer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/stability.h"
#include "core/window.h"

namespace churnlab {
namespace core {
namespace {

OnlineStabilityScorer::Options TwoMonthOptions(double alpha = 2.0) {
  OnlineStabilityScorer::Options options;
  options.significance.alpha = alpha;
  options.window_span_days = 60;
  return options;
}

TEST(OnlineStabilityScorer, MakeValidatesOptions) {
  OnlineStabilityScorer::Options bad_span = TwoMonthOptions();
  bad_span.window_span_days = 0;
  EXPECT_FALSE(OnlineStabilityScorer::Make(bad_span).ok());
  OnlineStabilityScorer::Options bad_alpha = TwoMonthOptions(-1.0);
  EXPECT_FALSE(OnlineStabilityScorer::Make(bad_alpha).ok());
  EXPECT_TRUE(OnlineStabilityScorer::Make(TwoMonthOptions()).ok());
}

TEST(OnlineStabilityScorer, EmitsOnWindowBoundary) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  EXPECT_TRUE(scorer.Observe(5, {1, 2}).ValueOrDie().empty());
  EXPECT_TRUE(scorer.Observe(40, {1}).ValueOrDie().empty());
  // Crossing into window 1 closes window 0.
  const auto emitted = scorer.Observe(70, {1}).ValueOrDie();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].window_index, 0);
  EXPECT_FALSE(emitted[0].has_history);
  EXPECT_DOUBLE_EQ(emitted[0].stability, 1.0);
  EXPECT_EQ(scorer.current_window(), 1);
}

TEST(OnlineStabilityScorer, SkippedWindowsEmittedAsEmpty) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  ASSERT_TRUE(scorer.Observe(5, {1}).ok());
  // Jump straight to window 3: windows 0, 1, 2 close.
  const auto emitted = scorer.Observe(200, {1}).ValueOrDie();
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_DOUBLE_EQ(emitted[0].stability, 1.0);  // no history yet
  EXPECT_DOUBLE_EQ(emitted[1].stability, 0.0);  // empty after history
  EXPECT_DOUBLE_EQ(emitted[2].stability, 0.0);
}

TEST(OnlineStabilityScorer, RejectsOutOfOrderDays) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  ASSERT_TRUE(scorer.Observe(50, {1}).ok());
  EXPECT_TRUE(scorer.Observe(40, {2}).status().IsInvalidArgument());
  // Same-day observations are fine.
  EXPECT_TRUE(scorer.Observe(50, {2}).ok());
}

TEST(OnlineStabilityScorer, RejectsPreOriginDays) {
  OnlineStabilityScorer::Options options = TwoMonthOptions();
  options.origin_day = 100;
  auto scorer = OnlineStabilityScorer::Make(options).ValueOrDie();
  EXPECT_TRUE(scorer.Observe(50, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(scorer.Observe(100, {1}).ok());
}

TEST(OnlineStabilityScorer, FinishClosesCurrentWindow) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  ASSERT_TRUE(scorer.Observe(5, {1, 2}).ok());
  const StabilityPoint point = scorer.Finish().ValueOrDie();
  EXPECT_EQ(point.window_index, 0);
  EXPECT_EQ(scorer.current_window(), 1);
  // Post-Finish observations in the closed window are rejected.
  EXPECT_TRUE(scorer.Observe(30, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(scorer.Observe(60, {1}).ok());
}

TEST(OnlineStabilityScorer, FinishWithoutObservationsFails) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  const auto finished = scorer.Finish();
  ASSERT_FALSE(finished.ok());
  EXPECT_TRUE(finished.status().IsFailedPrecondition());
  // The scorer is still usable: a later observation then Finish succeeds.
  ASSERT_TRUE(scorer.Observe(5, {1}).ok());
  EXPECT_TRUE(scorer.Finish().ok());
}

TEST(OnlineStabilityScorer, AdvanceToWithoutPurchases) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  ASSERT_TRUE(scorer.Observe(5, {1}).ok());
  const auto emitted = scorer.AdvanceTo(130).ValueOrDie();
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_DOUBLE_EQ(emitted[1].stability, 0.0);  // silent window
}

TEST(OnlineStabilityScorer, InvalidSymbolsDropped) {
  auto scorer = OnlineStabilityScorer::Make(TwoMonthOptions()).ValueOrDie();
  ASSERT_TRUE(scorer.Observe(5, {1, kInvalidSymbol}).ok());
  const StabilityPoint point = scorer.Finish().ValueOrDie();
  EXPECT_FALSE(point.has_history);
}

// The load-bearing property: streaming results are identical to the batch
// Windower + StabilityComputer pipeline on the same receipts.
class OnlineBatchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(OnlineBatchEquivalenceTest, MatchesBatchPipeline) {
  const double alpha = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed));

  // Random receipt stream: ~70 receipts over ~14 windows, small symbol
  // alphabet so collisions and absences are common.
  std::vector<retail::Receipt> receipts;
  retail::Day day = 0;
  while (day < 14 * 60) {
    retail::Receipt receipt;
    receipt.customer = 1;
    receipt.day = day;
    const size_t basket = 1 + rng.NextUint64(6);
    for (size_t i = 0; i < basket; ++i) {
      receipt.items.push_back(static_cast<retail::ItemId>(rng.NextUint64(9)));
    }
    std::sort(receipt.items.begin(), receipt.items.end());
    receipt.items.erase(
        std::unique(receipt.items.begin(), receipt.items.end()),
        receipt.items.end());
    receipts.push_back(receipt);
    day += static_cast<retail::Day>(1 + rng.NextUint64(20));
  }

  // Batch result.
  WindowerOptions window_options;
  window_options.window_span_days = 60;
  const Windower windower(window_options);
  const WindowedHistory history = windower.Build(
      std::span<const retail::Receipt>(receipts),
      [](retail::ItemId item) { return item; });
  SignificanceOptions significance;
  significance.alpha = alpha;
  const StabilitySeries batch =
      StabilityComputer::Make(significance).ValueOrDie().Compute(history);

  // Streaming result.
  OnlineStabilityScorer::Options online_options;
  online_options.significance = significance;
  online_options.window_span_days = 60;
  auto scorer = OnlineStabilityScorer::Make(online_options).ValueOrDie();
  std::vector<StabilityPoint> streamed;
  for (const retail::Receipt& receipt : receipts) {
    const auto emitted =
        scorer.Observe(receipt.day, receipt.items).ValueOrDie();
    streamed.insert(streamed.end(), emitted.begin(), emitted.end());
  }
  // Close any trailing silent windows plus the in-progress one.
  const auto tail =
      scorer.AdvanceTo(static_cast<retail::Day>(history.num_windows()) * 60)
          .ValueOrDie();
  streamed.insert(streamed.end(), tail.begin(), tail.end());

  ASSERT_EQ(streamed.size(), batch.points.size());
  for (size_t k = 0; k < streamed.size(); ++k) {
    EXPECT_EQ(streamed[k].window_index, batch.points[k].window_index);
    EXPECT_EQ(streamed[k].has_history, batch.points[k].has_history);
    EXPECT_DOUBLE_EQ(streamed[k].stability, batch.points[k].stability);
    EXPECT_DOUBLE_EQ(streamed[k].present_significance,
                     batch.points[k].present_significance);
    EXPECT_DOUBLE_EQ(streamed[k].total_significance,
                     batch.points[k].total_significance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphasAndSeeds, OnlineBatchEquivalenceTest,
    ::testing::Combine(::testing::Values(1.0, 1.5, 2.0, 4.0),
                       ::testing::Values(1, 2, 3)));

TEST(OnlineStabilityScorer, EwmaVariantStreamsToo) {
  OnlineStabilityScorer::Options options = TwoMonthOptions();
  options.significance.kind = SignificanceKind::kEwma;
  options.significance.ewma_lambda = 0.6;
  auto scorer = OnlineStabilityScorer::Make(options).ValueOrDie();
  ASSERT_TRUE(scorer.Observe(5, {1, 2}).ok());
  ASSERT_TRUE(scorer.Observe(70, {1}).ok());
  const auto emitted = scorer.Observe(130, {1}).ValueOrDie();
  ASSERT_EQ(emitted.size(), 1u);
  // Window 1 contained only symbol 1; symbol 2's EWMA share was lost.
  EXPECT_LT(emitted[0].stability, 1.0);
  EXPECT_GT(emitted[0].stability, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace churnlab
